#include "trace/trace_file.hh"

#include <cstring>

#include "common/logging.hh"

namespace cnsim
{

namespace
{

constexpr char magic[8] = {'C', 'N', 'S', 'T', 'R', 'C', '0', '1'};
constexpr char trf_magic[8] = {'C', 'N', 'T', 'R', 'F', '0', '0', '1'};

/** Sanity bound: more cores than this means a corrupt header. */
constexpr std::uint32_t trf_max_cores = 1024;

void
putU32(std::FILE *fp, std::uint32_t v)
{
    unsigned char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    std::fwrite(b, 1, 4, fp);
}

void
putU64(std::FILE *fp, std::uint64_t v)
{
    unsigned char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<unsigned char>(v >> (8 * i));
    std::fwrite(b, 1, 8, fp);
}

bool
getU32(std::FILE *fp, std::uint32_t &v)
{
    unsigned char b[4];
    if (std::fread(b, 1, 4, fp) != 4)
        return false;
    v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | b[i];
    return true;
}

bool
getU64(std::FILE *fp, std::uint64_t &v)
{
    unsigned char b[8];
    if (std::fread(b, 1, 8, fp) != 8)
        return false;
    v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | b[i];
    return true;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path) : path(path)
{
    fp = std::fopen(path.c_str(), "wb");
    if (!fp)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(magic, 1, sizeof(magic), fp);
    putU64(fp, 0);  // patched by close()
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    cnsim_assert(fp != nullptr, "write after close on '%s'", path.c_str());
    putU32(fp, rec.gap);
    putU64(fp, rec.iaddr);
    putU64(fp, rec.addr);
    unsigned char op = rec.op == MemOp::Store  ? 1
                       : rec.op == MemOp::Ifetch ? 2
                                                 : 0;
    std::fwrite(&op, 1, 1, fp);
    ++n_records;
}

void
TraceFileWriter::close()
{
    if (!fp)
        return;
    std::fseek(fp, sizeof(magic), SEEK_SET);
    putU64(fp, n_records);
    std::fclose(fp);
    fp = nullptr;
}

FileTraceSource::FileTraceSource(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        fatal("cannot open trace file '%s'", path.c_str());
    char m[8];
    if (std::fread(m, 1, 8, fp) != 8 || std::memcmp(m, magic, 8) != 0) {
        std::fclose(fp);
        fatal("'%s' is not a cnsim trace file", path.c_str());
    }
    std::uint64_t count = 0;
    if (!getU64(fp, count)) {
        std::fclose(fp);
        fatal("truncated trace header in '%s'", path.c_str());
    }
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        std::uint32_t gap;
        std::uint64_t iaddr, addr;
        unsigned char op;
        if (!getU32(fp, gap) || !getU64(fp, iaddr) || !getU64(fp, addr) ||
            std::fread(&op, 1, 1, fp) != 1) {
            std::fclose(fp);
            fatal("truncated trace record %llu in '%s'",
                  static_cast<unsigned long long>(i), path.c_str());
        }
        r.gap = gap;
        r.iaddr = iaddr;
        r.addr = addr;
        r.op = op == 1 ? MemOp::Store : op == 2 ? MemOp::Ifetch
                                                : MemOp::Load;
        trace.push_back(r);
    }
    std::fclose(fp);
    if (trace.empty())
        fatal("trace file '%s' has no records", path.c_str());
}

void
writeTrf(const std::string &path, const PackedTrace &trace)
{
    cnsim_assert(!trace.cores.empty(), "packed trace has no cores");
    std::FILE *fp = std::fopen(path.c_str(), "wb");
    if (!fp)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::fwrite(trf_magic, 1, sizeof(trf_magic), fp);
    putU32(fp, static_cast<std::uint32_t>(trace.cores.size()));
    putU32(fp, 0);  // reserved
    putU64(fp, trace.params_hash);
    putU64(fp, trace.seed);
    for (const PackedCoreTrace &c : trace.cores) {
        putU64(fp, c.n_records);
        putU64(fp, c.bytes.size());
    }
    for (const PackedCoreTrace &c : trace.cores) {
        if (!c.bytes.empty())
            std::fwrite(c.bytes.data(), 1, c.bytes.size(), fp);
    }
    if (std::ferror(fp)) {
        std::fclose(fp);
        fatal("I/O error writing trace file '%s'", path.c_str());
    }
    std::fclose(fp);
}

PackedTrace
readTrf(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        fatal("cannot open trace file '%s'", path.c_str());
    char m[8];
    if (std::fread(m, 1, 8, fp) != 8 ||
        std::memcmp(m, trf_magic, 8) != 0) {
        std::fclose(fp);
        fatal("'%s' is not a CNTRF001 trace file", path.c_str());
    }
    std::uint32_t num_cores = 0, reserved = 0;
    PackedTrace t;
    if (!getU32(fp, num_cores) || !getU32(fp, reserved) ||
        !getU64(fp, t.params_hash) || !getU64(fp, t.seed)) {
        std::fclose(fp);
        fatal("truncated CNTRF001 header in '%s'", path.c_str());
    }
    if (num_cores == 0 || num_cores > trf_max_cores) {
        std::fclose(fp);
        fatal("corrupt CNTRF001 header in '%s': %u cores", path.c_str(),
              num_cores);
    }
    t.cores.resize(num_cores);
    for (PackedCoreTrace &c : t.cores) {
        std::uint64_t n_bytes = 0;
        if (!getU64(fp, c.n_records) || !getU64(fp, n_bytes)) {
            std::fclose(fp);
            fatal("truncated CNTRF001 header in '%s'", path.c_str());
        }
        // A packed record is at least 3 bytes (one per varint field),
        // so a size wildly out of line with the count is corruption --
        // and this bound keeps the resize below from ballooning on a
        // hostile header before fread can fail.
        if (n_bytes > c.n_records * 30 || (c.n_records > 0 && n_bytes == 0)) {
            std::fclose(fp);
            fatal("corrupt CNTRF001 header in '%s': %llu records in "
                  "%llu bytes",
                  path.c_str(),
                  static_cast<unsigned long long>(c.n_records),
                  static_cast<unsigned long long>(n_bytes));
        }
        c.bytes.resize(n_bytes);
    }
    for (PackedCoreTrace &c : t.cores) {
        if (c.bytes.empty())
            continue;
        if (std::fread(c.bytes.data(), 1, c.bytes.size(), fp) !=
            c.bytes.size()) {
            std::fclose(fp);
            fatal("truncated CNTRF001 payload in '%s'", path.c_str());
        }
    }
    // The payload must end exactly where the header said it would.
    if (std::fgetc(fp) != EOF) {
        std::fclose(fp);
        fatal("trailing garbage after CNTRF001 payload in '%s'",
              path.c_str());
    }
    std::fclose(fp);
    return t;
}

TraceRecord
FileTraceSource::next()
{
    if (pos == trace.size()) {
        pos = 0;
        if (n_wraps++ == 0)
            warnOnce("file-trace-wrap",
                     "trace replay wrapped; consider a longer recording");
    }
    return trace[pos++];
}

} // namespace cnsim
