/**
 * @file
 * Workload catalog: the paper's Tables 2 and 3 as synthetic models.
 *
 * Multithreaded (Table 3): three commercial workloads -- oltp
 * (OSDL-DBT-2/TPC-C on PostgreSQL), apache (SURGE-driven static web
 * serving), specjbb (Java middleware OLTP) -- and two SPLASH-2
 * scientific codes, ocean and barnes. The paper orders them by
 * decreasing sharing; the synthetic parameters reproduce the measured
 * Figure-5 structure: oltp dominated by read-write sharing, apache and
 * specjbb mixing ROS and RWS (including large shared instruction
 * footprints), the scientific codes mostly private with small boundary
 * exchange.
 *
 * Multiprogrammed (Table 2): MIX1-MIX4, each four SPEC CPU2000
 * programs with per-benchmark working-set sizes taken from published
 * SPEC2K memory characterizations -- the non-uniform capacity demand
 * capacity stealing exploits.
 */

#ifndef CNSIM_TRACE_WORKLOADS_HH
#define CNSIM_TRACE_WORKLOADS_HH

#include <string>
#include <vector>

#include "trace/synth.hh"

namespace cnsim
{

/** A named workload specification. */
struct WorkloadSpec
{
    std::string name;
    /** True for the Table-3 multithreaded workloads. */
    bool multithreaded = true;
    /** True for the three commercial workloads (averaged in Fig. 5-10). */
    bool commercial = false;
    SynthWorkloadParams synth;
};

/** Catalog of every workload the paper evaluates. */
namespace workloads
{

/** Look up any workload by name ("oltp", "mix1", ...). */
WorkloadSpec byName(const std::string &name, int num_cores = 4);

/** Table 3: oltp, apache, specjbb, ocean, barnes (sharing order). */
std::vector<std::string> multithreadedNames();

/** The three commercial workloads averaged in the paper's headline. */
std::vector<std::string> commercialNames();

/** Table 2: mix1..mix4. */
std::vector<std::string> multiprogrammedNames();

/**
 * Per-benchmark single-program model for the SPEC2K-like applications
 * composing the mixes (Table 2).
 */
SynthThreadParams specApp(const std::string &app);

/** Names of the ten SPEC2K applications used by the mixes. */
std::vector<std::string> specAppNames();

} // namespace workloads

} // namespace cnsim

#endif // CNSIM_TRACE_WORKLOADS_HH
