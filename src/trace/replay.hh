/**
 * @file
 * Zero-copy trace capture and replay.
 *
 * A paper figure is a grid of L2 organizations all driven by the same
 * synthetic reference stream, yet historically every grid cell re-ran
 * the full generative model. A RecordedTrace materializes each
 * (workload, seed) stream once -- all cores, in a *canonical* order --
 * into flat per-core record buffers, and ReplaySource replays a core's
 * stream from those buffers with nothing but an array read per record.
 * Every cell of a sweep then shares one immutable trace (via
 * TraceCache), so generation is paid once instead of once per cell,
 * and every organization is, by construction, measured against the
 * bit-identical reference stream.
 *
 * In-memory chunks are deliberately *not* varint-packed: profiling the
 * packed read path (bench/perf_gate's sweep scenario) measured the
 * per-record varint decode costing as much as generation itself
 * (~25 ns each on the baseline host), which capped a replay-backed
 * sweep at parity with a live one. A flat TraceRecord array trades
 * ~3x the trace memory (24 B/record vs ~8 B packed, a few MB for the
 * paper budgets) for a decode-free hot path that the hardware
 * prefetcher streams. The varint codec below survives only at the
 * file boundary: CNTRF001 payloads are packed on save and decoded
 * (with validation) once on load.
 *
 * Canonical generation order. The synthetic model keeps cross-thread
 * state (the ROS/RWS recently-used registries), so per-core streams
 * depend on the order in which cores draw records. In live mode that
 * order is the simulated interleaving -- which depends on the L2
 * organization's timing, meaning live streams are *not* comparable
 * across organizations. A RecordedTrace instead draws records
 * round-robin (core 0..N-1, repeat), a fixed interleaving independent
 * of any simulator timing. This is the defining semantics of replay
 * mode: one stream, identical for every organization, every --jobs
 * value, and every host.
 *
 * Record encoding (the payload CNTRF001 files transport, ~8 B/record
 * for the paper workloads vs 21 B flat):
 *   varint(gap * 4 + op)                  op: 0 load, 1 store, 2 ifetch
 *   varint(zigzag(iaddr - prev_iaddr))
 *   varint(zigzag(addr - prev_addr))
 * where varint is the usual 7-bits-per-byte little-endian continuation
 * code and prev_* start at 0 per core stream. Decoding is strictly
 * sequential, which is exactly how cores consume traces.
 *
 * Thread-safety: a RecordedTrace generates lazily in fixed-size chunks
 * under a mutex, publishing each completed chunk with a release store;
 * ReplaySources on any thread read published chunks lock-free. Frozen
 * traces (loaded from file) are immutable.
 */

#ifndef CNSIM_TRACE_REPLAY_HH
#define CNSIM_TRACE_REPLAY_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "trace/synth.hh"
#include "trace/trace.hh"

namespace cnsim
{

/**
 * Bounds-checked sequential decoder over one packed core stream; the
 * validating counterpart of ReplaySource's trusting hot-path decoder.
 * Used when ingesting untrusted CNTRF001 payloads and by cntrace.
 */
class PackedStreamReader
{
  public:
    PackedStreamReader(const std::uint8_t *data, std::size_t size)
        : cur(data), end(data + size)
    {
    }

    /**
     * Decode one record. @return false at the end of the buffer or on
     * a malformed record (check error() to distinguish).
     */
    bool next(TraceRecord &out);

    /** True when decoding stopped on malformed bytes, not clean EOF. */
    bool error() const { return bad; }

    /** Records decoded so far. */
    std::uint64_t decoded() const { return n_decoded; }

  private:
    const std::uint8_t *cur;
    const std::uint8_t *end;
    Addr prev_iaddr = 0;
    Addr prev_addr = 0;
    std::uint64_t n_decoded = 0;
    bool bad = false;
};

/**
 * One (workload, seed) reference stream, materialized once for all
 * cores into packed per-core chunk lists.
 *
 * Two modes:
 *  - generating: owns a SynthWorkload and extends every core's stream
 *    on demand (canonical round-robin order), so consumers never run
 *    dry and a cold cache costs exactly one generation pass;
 *  - frozen: loaded from a CNTRF001 file (or fixed record vectors);
 *    consumers wrap to the start when they exhaust it, like the legacy
 *    FileTraceSource.
 */
class RecordedTrace
{
  public:
    /** Records per generated chunk, per core. */
    static constexpr std::uint32_t chunk_records = 4096;

    /** One flat segment of a core's stream (see the file comment for
     *  why in-memory chunks are not varint-packed). The instruction
     *  total lets ReplaySource fast-forward over a whole chunk in
     *  O(1): it decides whether a scan-and-count loop would stop
     *  inside it. */
    struct Chunk
    {
        std::vector<TraceRecord> records;
        /** Sum of (gap + 1) over the chunk's records. */
        std::uint64_t instr_total = 0;

        std::uint32_t nRecords() const
        {
            return static_cast<std::uint32_t>(records.size());
        }
    };

    /** Generating mode over a fresh SynthWorkload for @p params. */
    explicit RecordedTrace(const SynthWorkloadParams &params);

    /**
     * Frozen mode from a CNTRF001 file. Every core's payload is
     * decode-validated against its header record count; fatal on
     * malformed or empty streams.
     */
    static std::shared_ptr<RecordedTrace>
    fromFile(const std::string &path);

    /** Frozen mode from explicit per-core records (tests, adapters). */
    static std::shared_ptr<RecordedTrace>
    fromRecords(const std::vector<std::vector<TraceRecord>> &records);

    ~RecordedTrace();

    RecordedTrace(const RecordedTrace &) = delete;
    RecordedTrace &operator=(const RecordedTrace &) = delete;

    int cores() const { return num_cores; }

    /** True for file/record-backed traces that can run dry (and wrap). */
    bool frozen() const { return !synth; }

    /** Records currently published for @p core (grows in generating
     *  mode as consumers pull). */
    std::uint64_t recordsPublished(int core) const;

    /** Flat in-memory record bytes currently published, across all
     *  cores (sizeof(TraceRecord) per record; the varint-packed size
     *  exists only in CNTRF001 files). */
    std::uint64_t bytesPublished() const;

    /** Effective workload seed (provenance; 0 for fromRecords). */
    std::uint64_t seed() const { return trace_seed; }

    /** FNV-1a hash of the generating params (0 for fromRecords). */
    std::uint64_t paramsHash() const { return params_hash; }

    /** Snapshot the published stream prefix as a CNTRF001 file. */
    void saveTrf(const std::string &path) const;

    /**
     * Chunk @p idx of @p core's stream: generates (and publishes) it
     * first if needed in generating mode; nullptr past the end of a
     * frozen trace. Lock-free for already-published chunks.
     */
    const Chunk *
    chunk(int core, std::size_t idx)
    {
        if (idx >= published.load(std::memory_order_acquire)) {
            if (frozen())
                return nullptr;
            grow(idx);
        }
        return slots[static_cast<std::size_t>(core)][idx].get();
    }

    /** FNV-1a hash of a params structure (file provenance field). */
    static std::uint64_t hashParams(const SynthWorkloadParams &params);

  private:
    RecordedTrace();  // frozen-mode shell, filled by the factories

    /** Generate and publish chunks until @p idx is available. */
    void grow(std::size_t idx);

    int num_cores CNSIM_SYNC_NOTE("immutable after the factory") = 0;
    std::uint64_t trace_seed
        CNSIM_SYNC_NOTE("immutable after the factory") = 0;
    std::uint64_t params_hash
        CNSIM_SYNC_NOTE("immutable after the factory") = 0;

    /** Generating mode only; null when frozen. The pointer itself is
     *  set once at construction (frozen() null-checks it lock-free);
     *  the workload it points to advances only under grow_mutex. */
    std::unique_ptr<SynthWorkload> synth CNSIM_PT_GUARDED_BY(grow_mutex);

    /**
     * slots[core][chunk] -> published chunks. Pre-sized so readers can
     * index without synchronizing with growth; `published` (release/
     * acquire) is the visibility fence for slot contents.
     */
    std::vector<std::vector<std::unique_ptr<Chunk>>> slots
        CNSIM_SYNC_NOTE("cells below `published` are frozen and read "
                        "lock-free; cells above it are written only "
                        "under grow_mutex, then published with a "
                        "release store");
    std::atomic<std::size_t> published{0};
    Mutex grow_mutex;
};

/**
 * A final, pointer-bumping TraceSource over one core's stream of a
 * RecordedTrace. Replaces the whole generative machinery on the replay
 * side of a sweep: next() is an array read from the current chunk.
 *
 * Multiple ReplaySources (across threads) may share one RecordedTrace;
 * each keeps its own cursor.
 */
class ReplaySource final : public TraceSource
{
  public:
    ReplaySource(RecordedTrace &trace, int core);

    TraceRecord next() override;

    /** Positional reposition; hops whole chunks in O(1) each. */
    void skip(std::uint64_t n) override;

    /** Instruction-bounded fast-forward; hops whole chunks using the
     *  per-chunk instruction totals, scanning only the partial chunk
     *  the stopping record lands in. */
    SkipResult skipInstructions(std::uint64_t min_instrs) override;

    /** Times a frozen trace ran dry and restarted from the top. */
    std::uint64_t wraps() const { return n_wraps; }

    /** Records consumed so far -- the stream cursor a checkpoint
     *  persists. Purely positional: record N of any stream generated
     *  from the same workload family is the N-th canonical draw. */
    std::uint64_t consumed() const { return n_consumed; }

  private:
    /** Step to chunk @p idx; wraps frozen traces at the end. */
    void advanceTo(std::size_t idx);

    RecordedTrace &trace;
    int core;
    const RecordedTrace::Chunk *cur = nullptr;
    std::size_t chunk_idx = 0;
    std::uint32_t off = 0;
    std::uint64_t n_wraps = 0;
    std::uint64_t n_consumed = 0;
};

/**
 * Canonical-order live generation: the replay *stream* without the
 * replay *codec*.
 *
 * Profiling the packed-chunk read path (bench/perf_gate's sweep
 * scenario) showed the varint encode+decode round trip costing more
 * than generation itself on hosts where the generative model is cheap
 * relative to simulation (BENCH_perf.json `generator_share` ~0.18:
 * decode ~5.7 ms/cell vs generation ~4.3 ms/cell on the baseline
 * host), which is how replay-backed sweeps ended up *slower* than
 * live ones (`sweep.speedup` 0.945). What defines replay semantics is
 * not the materialized bytes but the canonical draw order; this class
 * reproduces exactly that order -- one record per core, core 0..N-1,
 * repeat, identical to RecordedTrace::grow() -- straight out of a
 * SynthWorkload, with per-core FIFO buffers absorbing the skew
 * between the fixed generation order and the timing-dependent
 * consumption order. Every record equals the materialized trace's
 * record at the same position, so results are byte-identical to
 * replay mode at zero codec cost.
 *
 * Materialize a RecordedTrace instead when a *positional cursor* is
 * needed (checkpoint save/load, sampling's O(1) chunk hops, trace
 * capture); ParallelRunner::needsMaterializedTrace encodes that
 * policy.
 *
 * Not thread-safe: one instance drives one run, like SynthWorkload.
 */
class CanonicalWorkload
{
  public:
    explicit CanonicalWorkload(const SynthWorkloadParams &params);
    ~CanonicalWorkload();

    CanonicalWorkload(const CanonicalWorkload &) = delete;
    CanonicalWorkload &operator=(const CanonicalWorkload &) = delete;

    int cores() const { return num_cores; }

    /** Trace source driving @p core; emits the canonical stream. */
    TraceSource &source(int core);

  private:
    class CoreSource;

    /** Draw one canonical round: one record per core, core 0..N-1. */
    void drawRound();

    SynthWorkload synth;
    int num_cores;
    std::vector<std::unique_ptr<CoreSource>> sources;
};

/**
 * Process-wide cache of RecordedTraces keyed by the *effective*
 * workload parameters (every field, plus the seed), so every grid cell
 * of a sweep -- across Runner, ParallelRunner workers, and bench
 * binaries -- shares one trace per (workload, seed). Entries are held
 * by weak_ptr: a trace lives exactly as long as some runner holds it.
 */
class TraceCache
{
  public:
    static TraceCache &global();

    /**
     * The shared trace for @p params (which must already include the
     * run seed mixing, i.e. Runner's effective params), creating it on
     * first use.
     */
    std::shared_ptr<RecordedTrace>
    acquire(const SynthWorkloadParams &params);

    /** Live (still-referenced) entries; for tests and diagnostics. */
    std::size_t liveEntries();

  private:
    Mutex mutex;
    std::map<std::string, std::weak_ptr<RecordedTrace>> entries
        CNSIM_GUARDED_BY(mutex);
};

} // namespace cnsim

#endif // CNSIM_TRACE_REPLAY_HH
