/**
 * @file
 * 2D-mesh / ring network-on-chip timing model.
 *
 * The paper's snooping bus serializes every coherence action; the NoC
 * replaces it with point-to-point messages over a W x H mesh of routers
 * (one per core) connected by directed links. A ring is the degenerate
 * 1D case (H = 1) with wraparound.
 *
 * Timing follows the same occupancy philosophy as the rest of the
 * simulator: each directed link is a Resource; a message acquires every
 * link on its route in order, paying `hop_latency` wire traversal plus
 * `router_delay` pipeline delay per hop, and `link_occupancy` ticks of
 * serialization on each link. Contention therefore shows up as
 * queueing at the first busy link rather than per-flit simulation --
 * the same fidelity/cost trade the bus model makes.
 *
 * Routing is deterministic dimension-ordered XY (X first, then Y) in
 * the mesh and shortest-direction (ties clockwise) in the ring, so
 * results are bit-identical for any --jobs.
 */

#ifndef CNSIM_MEM_NOC_HH
#define CNSIM_MEM_NOC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/interconnect.hh"
#include "mem/resource.hh"

namespace cnsim
{

namespace obs
{
class TraceSink;
} // namespace obs

/** Parameters of the mesh/ring NoC (and its directory timing). */
struct NocParams
{
    /** Wire traversal latency per hop. */
    Tick hop_latency = 1;
    /** Per-router pipeline delay (route + arbitrate + crossbar). */
    Tick router_delay = 3;
    /** Ticks one message serializes a link for (header + payload). */
    Tick link_occupancy = 1;
    /** Home-node directory lookup latency (DirectoryInterconnect). */
    Tick dir_latency = 6;
};

/** A W x H mesh (or 1 x N wraparound ring) of routers and links. */
class Noc
{
  public:
    /**
     * @param kind Mesh or Ring (Bus is rejected).
     * @param nodes Router count; one node per core/home slice.
     */
    Noc(InterconnectKind kind, int nodes, const NocParams &p = NocParams{});

    /**
     * Route one message from node @p src to node @p dst, entering the
     * network at tick @p at, acquiring each link on the route.
     *
     * @return the arrival tick at @p dst (>= at + router_delay).
     */
    [[nodiscard]] Tick send(int src, int dst, Tick at);

    /** @return the route length in links, without acquiring anything. */
    [[nodiscard]] int hopCount(int src, int dst) const;

    [[nodiscard]] int nodes() const { return n_nodes; }
    [[nodiscard]] int width() const { return w; }
    [[nodiscard]] int height() const { return h; }
    [[nodiscard]] InterconnectKind kind() const { return _kind; }
    [[nodiscard]] const NocParams &params() const { return p; }

    /** Messages injected since the last reset. */
    [[nodiscard]] std::uint64_t messages() const { return n_msgs.value(); }
    /** Link traversals since the last reset. */
    [[nodiscard]] std::uint64_t hops() const { return n_hops.value(); }

    /** Register aggregate and per-link stats under @p group. */
    void regStats(StatGroup &group);
    void resetStats();

    /** Emit per-link Resource events into @p s under "mem.noc.*". */
    void attachSink(obs::TraceSink *s);

    /** Serialize every link's occupancy into a checkpoint. */
    void saveState(sample::Writer &w) const;

    /** Restore link occupancy from a checkpoint. */
    void loadState(sample::Reader &r);

  private:
    /** Directed link leaving @p node towards @p dir (0=E 1=W 2=N 3=S). */
    Resource &link(int node, int dir);

    InterconnectKind _kind;
    NocParams p;
    int n_nodes;
    int w;
    int h;
    /** Directed links indexed node * 4 + dir; null where no neighbor. */
    std::vector<std::unique_ptr<Resource>> links;
    Counter n_msgs;
    Counter n_hops;
};

} // namespace cnsim

#endif // CNSIM_MEM_NOC_HH
