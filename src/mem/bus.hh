/**
 * @file
 * On-chip pipelined split-transaction snooping bus.
 *
 * The paper models the bus latency as the time for a core to reach the
 * farthest tag array (32 cycles at 70 nm / 5 GHz) and gives it separate
 * address and pointer wires: CMP-NuRAPID's controlled replication
 * returns a forward *pointer* rather than the data block on clean
 * cache-to-cache transfers.
 *
 * Because the bus is pipelined, successive transactions overlap: the
 * serializing stage is the address-phase slot (one new transaction per
 * `arbitration` ticks); the end-to-end visibility latency of each
 * transaction is `latency` ticks.
 *
 * Protocol *logic* (who responds, what state changes) lives in the L2
 * organizations, which have the global view; the Bus provides timing
 * and per-command accounting. It implements the Interconnect interface
 * but ignores the requestor/address operands -- a broadcast medium has
 * no use for them -- so bus-coupled runs are bit-identical to the
 * pre-interface simulator.
 */

#ifndef CNSIM_MEM_BUS_HH
#define CNSIM_MEM_BUS_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/interconnect.hh"
#include "mem/packet.hh"
#include "mem/resource.hh"

namespace cnsim
{

/** Parameters for the snooping bus. */
struct BusParams
{
    /** End-to-end transaction latency (request visible everywhere). */
    Tick latency = 32;
    /** Minimum spacing between successive address phases. */
    Tick arbitration = 4;
};

/** Timing/accounting model of the snoopy bus. */
class SnoopBus : public Interconnect
{
  public:
    explicit SnoopBus(const BusParams &p = BusParams{});

    using Interconnect::postedTransaction;
    using Interconnect::transaction;

    /**
     * Place a transaction of kind @p cmd on the bus at tick @p at.
     * @p src and @p addr are accounting-only on a broadcast medium and
     * are ignored.
     *
     * @return the tick at which the transaction has been seen by every
     *         snooper and any combined response (shared/dirty signals,
     *         pointer return) is available at the requestor.
     */
    [[nodiscard]] Tick transaction(BusCmd cmd, CoreId src, Addr addr,
                                   Tick at) override;

    /**
     * Place a transaction that does not stall the issuer (BusRepl,
     * writeback address phases). Occupies the address slot only.
     */
    void postedTransaction(BusCmd cmd, CoreId src, Addr addr,
                           Tick at) override;

    void regStats(StatGroup &group) override;
    void resetStats() override;

    /** Emit BusTx (and address-slot Resource) events into @p s. */
    void attachSink(obs::TraceSink *s) override;

    [[nodiscard]] std::uint64_t count(BusCmd cmd) const override
    {
        return counts[static_cast<int>(cmd)].value();
    }

    [[nodiscard]] Tick latency() const override { return params.latency; }

    void saveState(sample::Writer &w) const override;
    void loadState(sample::Reader &r) override;

  private:
    /** Arbitrate for the address slot and account one transaction.
     *  @return the slot-grant tick. */
    Tick place(BusCmd cmd, Tick at);

    BusParams params;
    Resource slot;
    std::array<Counter, num_bus_cmds> counts;
    obs::TraceSink *sink = nullptr;
    int track = -1;
};

} // namespace cnsim

#endif // CNSIM_MEM_BUS_HH
