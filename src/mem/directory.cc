#include "mem/directory.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace_sink.hh"
#include "sample/checkpoint.hh"

namespace cnsim
{

DirectoryInterconnect::DirectoryInterconnect(InterconnectKind kind,
                                            int cores,
                                            unsigned block_size,
                                            CohMode mode,
                                            const NocParams &p)
    : coh_mode(mode), blk_shift(floorLog2(block_size)),
      net(kind, cores, p)
{
    cnsim_assert(cores >= 1 && cores <= 64,
                 "directory sharer bitset holds at most 64 cores, got %d",
                 cores);
    cnsim_assert(isPowerOf2(block_size),
                 "directory block size %u not a power of two", block_size);
}

int
DirectoryInterconnect::homeOf(Addr addr) const
{
    return static_cast<int>((addr >> blk_shift) %
                            static_cast<Addr>(net.nodes()));
}

std::uint64_t
DirectoryInterconnect::sharersOf(Addr addr) const
{
    const DirEntry *e = dir.find(blockAlign(addr, 1u << blk_shift));
    return e ? e->sharers : 0;
}

CoreId
DirectoryInterconnect::ownerOf(Addr addr) const
{
    const DirEntry *e = dir.find(blockAlign(addr, 1u << blk_shift));
    return e ? e->owner : invalid_id;
}

bool
DirectoryInterconnect::dirtyOf(Addr addr) const
{
    const DirEntry *e = dir.find(blockAlign(addr, 1u << blk_shift));
    return e && e->dirty;
}

Tick
DirectoryInterconnect::latency() const
{
    // Representative request + reply across half the fabric's
    // diameter, plus the home lookup; used by energy/latency models,
    // never on the timed path.
    Tick hop = net.params().hop_latency + net.params().router_delay;
    return net.params().dir_latency +
           static_cast<Tick>(net.width() + net.height()) * hop;
}

Tick
DirectoryInterconnect::fanOut(std::uint64_t mask, CoreId skip, int home,
                              Tick at, bool acks)
{
    Tick done = at;
    for (int c = 0; c < net.nodes(); ++c) {
        if (!(mask & (1ull << c)) || c == skip)
            continue;
        Tick arrive = net.send(home, c, at);
        if (acks)
            done = std::max(done, net.send(c, home, arrive));
        else
            done = std::max(done, arrive);
    }
    return acks ? done : at;
}

void
DirectoryInterconnect::relinquish(DirEntry &e, CoreId src, Addr baddr,
                                  bool wrote_back)
{
    e.sharers &= ~(1ull << src);
    if (e.owner == src)
        e.owner = invalid_id;
    // A clean departure (DirPut) says nothing about the surviving
    // copies -- under MESIC they are collectively newer than memory,
    // and in update mode the owner still holds dirty data. Only a
    // writeback makes memory current again.
    if (wrote_back)
        e.dirty = false;
    if (e.sharers == 0 && e.owner == invalid_id)
        dir.erase(baddr);
}

Tick
DirectoryInterconnect::request(BusCmd cmd, CoreId src, Addr addr, Tick at)
{
    counts[static_cast<int>(cmd)].inc();

    Addr baddr = blockAlign(addr, 1u << blk_shift);
    int home = homeOf(baddr);
    int src_node = src != invalid_id ? src % net.nodes() : home;

    // Request leg plus the home lookup.
    Tick t = net.send(src_node, home, at) + net.params().dir_latency;

    DirEntry *found = dir.find(baddr);
    DirEntry snap = found ? *found : DirEntry{};
    bool anonymous = src == invalid_id;

    switch (cmd) {
      case BusCmd::BusRd: {
        if (snap.owner != invalid_id && snap.owner != src) {
            // Forward through the owner, which supplies the data. An
            // exclusive grantee may have silently upgraded E->M, so
            // any owned line is forwarded, not just known-dirty ones.
            Tick fwd = net.send(home, snap.owner, t);
            t = net.send(snap.owner, src_node, fwd);
        } else {
            t = net.send(home, src_node, t);
        }
        if (!anonymous) {
            DirEntry &e = dir[baddr];
            e.sharers |= 1ull << src;
            if (snap.sharers == 0) {
                // Exclusive grant: the sole reader may later upgrade
                // E->M without another transaction, so the home keeps
                // it as the owner to forward future requests through.
                e.owner = src;
            } else if (coh_mode == CohMode::Mesi) {
                // Illinois MESI flushes on a snooped read and every
                // copy continues clean. Under MESIC the C copies stay
                // dirty, and under write-update the owner keeps
                // supplying dirty data without updating memory.
                e.dirty = false;
                e.owner = invalid_id;
            }
        }
        break;
      }

      case BusCmd::BusRdX:
      case BusCmd::BusUpg:
      case BusCmd::BusUpd: {
        // A write reaching the fabric multicasts to the live sharers
        // -- data updates under MESIC-C/write-update, invalidations
        // under MESI -- with the same traffic either way. The home
        // cannot tell which (the protocol decision lives in the org's
        // global view, and a silent E->M upgrade is invisible here),
        // so it conservatively records the writer as a dirty member;
        // when the org invalidates the losers, their DirPut notices
        // trim the membership.
        Tick fan = fanOut(snap.sharers, src, home, t, true);
        t = net.send(home, src_node, fan);
        if (!anonymous) {
            DirEntry &e = dir[baddr];
            e.sharers |= 1ull << src;
            e.owner = src;
            e.dirty = true;
        }
        break;
      }

      case BusCmd::BusRepl: {
        // Replacement notification for shared data (paper 3.1):
        // advisory multicast, membership untouched -- cores holding
        // their own replica in a different frame keep their copies,
        // and each invalidated tag sends its own DirPut.
        t = fanOut(snap.sharers, src, home, t, false);
        break;
      }

      case BusCmd::WrBack: {
        // Memory is off-mesh behind the home node's controller; the
        // org accounts the DRAM latency itself. A writeback carrying a
        // valid src is a true eviction and drops membership; anonymous
        // flushes (e.g. M data pushed to memory while the block's
        // ownership moves to a new writer) are timing-only.
        if (!anonymous && found)
            relinquish(*found, src, baddr, true);
        break;
      }

      case BusCmd::DirPut: {
        if (!anonymous && found)
            relinquish(*found, src, baddr, false);
        break;
      }
    }

    if (sink) {
        const DirEntry *after = dir.find(baddr);
        sink->directoryState(t, track, src, baddr,
                             after ? after->sharers : 0,
                             after ? after->owner : invalid_id, cmd);
    }
    return t;
}

Tick
DirectoryInterconnect::transaction(BusCmd cmd, CoreId src, Addr addr,
                                   Tick at)
{
    return request(cmd, src, addr, at);
}

void
DirectoryInterconnect::postedTransaction(BusCmd cmd, CoreId src, Addr addr,
                                         Tick at)
{
    (void)request(cmd, src, addr, at);
}

void
DirectoryInterconnect::attachSink(obs::TraceSink *s)
{
    sink = s;
    track = s ? s->registerComponent("mem.directory") : -1;
    net.attachSink(s);
}

void
DirectoryInterconnect::regStats(StatGroup &group)
{
    for (int i = 0; i < num_bus_cmds; ++i)
        group.addCounter(
            std::string("dir.") + statName(static_cast<BusCmd>(i)),
            &counts[i], "directory requests");
    net.regStats(group);
}

void
DirectoryInterconnect::resetStats()
{
    for (auto &c : counts)
        c.reset();
    net.resetStats();
}

void
DirectoryInterconnect::saveState(sample::Writer &w) const
{
    net.saveState(w);
    // FlatMap iterates in hash order, which is not part of the
    // deterministic contract; serialize lines sorted by block address
    // so identical machine states produce identical checkpoints
    // (cnlint CNL-D003 discipline).
    std::vector<std::pair<Addr, DirEntry>> lines;
    lines.reserve(dir.size());
    dir.forEach([&lines](const Addr &a, const DirEntry &e) {
        lines.emplace_back(a, e);
    });
    std::sort(lines.begin(), lines.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    w.u64(lines.size());
    for (const auto &l : lines) {
        w.u64(l.first);
        w.u64(l.second.sharers);
        w.u32(static_cast<std::uint32_t>(l.second.owner));
        w.u8(l.second.dirty ? 1 : 0);
    }
}

void
DirectoryInterconnect::loadState(sample::Reader &r)
{
    net.loadState(r);
    dir.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = r.u64();
        DirEntry e;
        e.sharers = r.u64();
        e.owner = static_cast<CoreId>(static_cast<std::int32_t>(r.u32()));
        e.dirty = r.u8() != 0;
        dir[a] = e;
    }
}

} // namespace cnsim
