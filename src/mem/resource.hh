/**
 * @file
 * Timed hardware resources with explicit occupancy.
 *
 * A Resource models a structure with @p ports identical servers (a
 * single-ported SRAM array, a 4-port shared cache, a memory channel
 * group). A request acquires the earliest-free server at or after its
 * arrival tick and holds it for its occupancy; the returned grant time
 * composes into the request's latency. This captures queueing delay
 * under contention without per-cycle simulation.
 *
 * The paper's bandwidth assumptions map directly onto Resources:
 * single-ported, unpipelined private tag arrays and data d-groups; a
 * 4-port uniform-shared cache; a pipelined split-transaction bus whose
 * address phase is the serializing stage.
 */

#ifndef CNSIM_MEM_RESOURCE_HH
#define CNSIM_MEM_RESOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace cnsim
{

namespace obs
{
class TraceSink;
} // namespace obs

namespace sample
{
class Writer;
class Reader;
} // namespace sample

/** A contended hardware structure with one or more identical ports. */
class Resource
{
  public:
    /**
     * @param name Debug/stat name.
     * @param ports Number of identical servers.
     */
    explicit Resource(std::string name, unsigned ports = 1);

    /**
     * Acquire the earliest-available port at or after @p at and hold it
     * for @p occupancy ticks.
     *
     * @return the grant tick (>= at); the request's access may begin
     *         then, and the port frees at grant + occupancy.
     */
    [[nodiscard]] Tick acquire(Tick at, Tick occupancy);

    /** Peek at the earliest grant time without acquiring. */
    [[nodiscard]] Tick earliestGrant(Tick at) const;

    /** Register this resource's stats into @p group. */
    void regStats(StatGroup &group);

    /** Forget all occupancy (new measurement phase). */
    void reset();

    /**
     * Emit a Resource trace event per grant into @p s under the track
     * @p path (defaults to "res.<name>").
     */
    void attachSink(obs::TraceSink *s, const std::string &path = "");

    [[nodiscard]] const std::string &name() const { return _name; }

    /** Serialize port occupancy (free_at) into a checkpoint. */
    void saveState(sample::Writer &w) const;

    /** Restore port occupancy from a checkpoint. */
    void loadState(sample::Reader &r);

  private:
    std::string _name;
    std::vector<Tick> free_at;
    Counter n_grants;
    Counter wait_ticks;
    Counter busy_ticks;
    obs::TraceSink *sink = nullptr;
    int track = -1;
};

} // namespace cnsim

#endif // CNSIM_MEM_RESOURCE_HH
