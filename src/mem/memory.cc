#include "mem/memory.hh"

namespace cnsim
{

MainMemory::MainMemory(const MemoryParams &p)
    : params(p), channels_res("memChannels", p.channels)
{
}

Tick
MainMemory::read(Tick at)
{
    n_reads.inc();
    Tick grant = channels_res.acquire(at, params.occupancy);
    // Data is on chip after the burst transfer plus the access latency.
    return grant + params.occupancy + params.latency;
}

void
MainMemory::writeback(Tick at)
{
    n_writebacks.inc();
    // Buffered: the writeback holds a channel but nothing waits on the
    // grant tick, so the result is deliberately dropped.
    (void)channels_res.acquire(at, params.occupancy);
}

void
MainMemory::regStats(StatGroup &group)
{
    group.addCounter("mem.reads", &n_reads, "main-memory fills");
    group.addCounter("mem.writebacks", &n_writebacks,
                     "main-memory writebacks");
    channels_res.regStats(group);
}

void
MainMemory::resetStats()
{
    n_reads.reset();
    n_writebacks.reset();
    channels_res.reset();
}

} // namespace cnsim
