/**
 * @file
 * Request/response vocabulary shared by the whole memory system.
 */

#ifndef CNSIM_MEM_PACKET_HH
#define CNSIM_MEM_PACKET_HH

#include <string>

#include "common/types.hh"

namespace cnsim
{

/** Kind of memory reference issued by a core. */
enum class MemOp
{
    Load,
    Store,
    Ifetch,
};

/** @return true for operations that read. */
constexpr bool
isRead(MemOp op)
{
    return op != MemOp::Store;
}

/**
 * Classification of an L2 access, following the paper's Section 5.1.1:
 * a miss is a ROS (read-only-sharing) miss when another on-chip copy of
 * the block exists in a clean shared state, a RWS (read-write-sharing)
 * miss when a dirty on-chip copy exists, and a capacity miss otherwise.
 */
enum class AccessClass
{
    Hit,
    ROSMiss,
    RWSMiss,
    CapacityMiss,
};

/** Human-readable name for an AccessClass. */
inline const char *
toString(AccessClass c)
{
    switch (c) {
      case AccessClass::Hit: return "hit";
      case AccessClass::ROSMiss: return "rosMiss";
      case AccessClass::RWSMiss: return "rwsMiss";
      case AccessClass::CapacityMiss: return "capacityMiss";
    }
    return "?";
}

/** A memory reference presented to the cache hierarchy. */
struct MemAccess
{
    CoreId core = 0;
    Addr addr = 0;
    MemOp op = MemOp::Load;
};

/**
 * Result of an L2 access: when it completes, how it was classified,
 * and where the data was found (for d-group distribution stats).
 */
struct AccessResult
{
    /** Tick at which the requesting core may resume. */
    Tick complete = 0;
    /** Paper-style access classification. */
    AccessClass cls = AccessClass::Hit;
    /** D-group that serviced the data, or invalid_id if not applicable. */
    DGroupId dgroup = invalid_id;
    /** True if serviced from the requestor's closest d-group. */
    bool closest = false;
    /** True if the L1 copy (if any) must be write-through (C state). */
    bool l1WriteThrough = false;
    /** True if the L1 may cache the block with silent-store ownership. */
    bool l1Owned = false;
};

/** Snooping-bus transaction kinds (MESI + the paper's additions). */
enum class BusCmd
{
    BusRd,    //!< read miss broadcast
    BusRdX,   //!< write miss / C-state write broadcast
    BusUpg,   //!< upgrade (write to a clean shared block)
    BusRepl,  //!< replacement notification for shared data (paper 3.1)
    WrBack,   //!< dirty writeback to memory
    BusUpd,   //!< write-update broadcast (update-protocol baseline)
    DirPut,   //!< clean-eviction notice to a directory home node
};

/** Number of distinct BusCmd values. */
constexpr int num_bus_cmds = 7;

/** Human-readable name for a BusCmd. */
inline const char *
toString(BusCmd c)
{
    switch (c) {
      case BusCmd::BusRd: return "BusRd";
      case BusCmd::BusRdX: return "BusRdX";
      case BusCmd::BusUpg: return "BusUpg";
      case BusCmd::BusRepl: return "BusRepl";
      case BusCmd::WrBack: return "WrBack";
      case BusCmd::BusUpd: return "BusUpd";
      case BusCmd::DirPut: return "DirPut";
    }
    return "?";
}

/** Stat name for a BusCmd ("bus.busRd" style lower camel case). */
inline const char *
statName(BusCmd c)
{
    switch (c) {
      case BusCmd::BusRd: return "busRd";
      case BusCmd::BusRdX: return "busRdX";
      case BusCmd::BusUpg: return "busUpg";
      case BusCmd::BusRepl: return "busRepl";
      case BusCmd::WrBack: return "wrBack";
      case BusCmd::BusUpd: return "busUpd";
      case BusCmd::DirPut: return "dirPut";
    }
    return "?";
}

} // namespace cnsim

#endif // CNSIM_MEM_PACKET_HH
