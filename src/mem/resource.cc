#include "mem/resource.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/trace_sink.hh"
#include "sample/checkpoint.hh"
#include "sample/warm.hh"

namespace cnsim
{

Resource::Resource(std::string name, unsigned ports)
    : _name(std::move(name))
{
    cnsim_assert(ports >= 1, "resource '%s' needs at least one port",
                 _name.c_str());
    free_at.assign(ports, 0);
}

Tick
Resource::acquire(Tick at, Tick occupancy)
{
    // Functional fast-forward: grant immediately, occupy nothing,
    // count nothing. Architectural state transitions in the caller
    // proceed exactly as in detailed mode; only time is neutralized.
    if (sample::WarmScope::active())
        return at;
    auto it = std::min_element(free_at.begin(), free_at.end());
    Tick grant = std::max(at, *it);
    *it = grant + occupancy;
    n_grants.inc();
    wait_ticks.inc(grant - at);
    busy_ticks.inc(occupancy);
    if (sink)
        sink->resourceAcquire(grant, track, grant - at, occupancy);
    return grant;
}

Tick
Resource::earliestGrant(Tick at) const
{
    return std::max(at, *std::min_element(free_at.begin(), free_at.end()));
}

void
Resource::regStats(StatGroup &group)
{
    group.addCounter(_name + ".grants", &n_grants,
                     "requests granted a port");
    group.addCounter(_name + ".waitTicks", &wait_ticks,
                     "total ticks spent waiting for a port");
    group.addCounter(_name + ".busyTicks", &busy_ticks,
                     "total ticks a port was held");
}

void
Resource::attachSink(obs::TraceSink *s, const std::string &path)
{
    sink = s;
    track = s ? s->registerComponent(path.empty() ? "res." + _name : path)
              : -1;
}

void
Resource::reset()
{
    n_grants.reset();
    wait_ticks.reset();
    busy_ticks.reset();
}

void
Resource::saveState(sample::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(free_at.size()));
    for (Tick t : free_at)
        w.tick(t);
}

void
Resource::loadState(sample::Reader &r)
{
    std::uint32_t n = r.u32();
    cnsim_assert(n == free_at.size(),
                 "checkpoint has %u ports for resource '%s' with %zu", n,
                 _name.c_str(), free_at.size());
    for (Tick &t : free_at)
        t = r.tick();
}

} // namespace cnsim
