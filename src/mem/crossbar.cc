#include "mem/crossbar.hh"

#include "common/logging.hh"

namespace cnsim
{

Crossbar::Crossbar(int num_dgroups, Tick traversal)
    : traversal(traversal)
{
    cnsim_assert(num_dgroups > 0, "crossbar needs at least one d-group");
    ports.reserve(num_dgroups);
    for (int i = 0; i < num_dgroups; ++i)
        ports.emplace_back(
            std::make_unique<Resource>(strfmt("dgroupPort%d", i), 1));
}

Tick
Crossbar::access(DGroupId dg, Tick at, Tick occupancy)
{
    cnsim_assert(dg >= 0 && dg < numDGroups(), "bad d-group id %d", dg);
    n_accesses.inc();
    return ports[dg]->acquire(at + traversal, occupancy);
}

void
Crossbar::regStats(StatGroup &group)
{
    group.addCounter("xbar.accesses", &n_accesses, "crossbar traversals");
    for (auto &p : ports)
        p->regStats(group);
}

void
Crossbar::attachSink(obs::TraceSink *s)
{
    for (std::size_t i = 0; i < ports.size(); ++i)
        ports[i]->attachSink(s, strfmt("l2.xbar.dg%zu", i));
}

void
Crossbar::resetStats()
{
    n_accesses.reset();
    for (auto &p : ports)
        p->reset();
}

} // namespace cnsim
