/**
 * @file
 * Home-node directory coherence over the mesh/ring NoC.
 *
 * Replaces the snooping bus's broadcasts with directory messages: each
 * block has a home node, striped across the NoC at block granularity
 * the same way CMP-NuRAPID stripes d-group frames, holding a sharer
 * bitset, an owner pointer, and a dirty bit. Requests travel
 * requestor -> home, pay the directory lookup, then fan out only to
 * the cores the directory names -- invalidations under MESI,
 * update-multicasts to the sharer set under MESIC (the paper's
 * in-situ-communication C state) and the write-update baseline.
 *
 * Protocol *logic* still lives in the L2 organizations, which have the
 * global view; the directory mirrors membership from the
 * (cmd, src, addr) stream to (a) time the multicasts and (b) hand the
 * ProtocolAuditor an independent reading of who should hold each
 * block. Anonymous traffic (invalid src) is timing-only and never
 * touches membership: flush-to-memory writebacks must not clobber the
 * ownership a preceding BusRdX just established for the new writer.
 *
 * Silent clean evictions and snoop-driven invalidations would strand
 * sharer bits, so the directory answers wantsEvictionNotices() with
 * true and the organizations post BusCmd::DirPut whenever a copy
 * leaves a cache without a writeback -- clean replacements, and each
 * peer copy a write transaction invalidates. The home itself never
 * guesses whether a write invalidates or updates (a silent E->M
 * upgrade makes that undecidable from the request stream alone): it
 * always keeps the multicast targets as members and lets the losers'
 * DirPut notices trim the set.
 */

#ifndef CNSIM_MEM_DIRECTORY_HH
#define CNSIM_MEM_DIRECTORY_HH

#include <array>
#include <cstdint>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/interconnect.hh"
#include "mem/noc.hh"
#include "mem/packet.hh"

namespace cnsim
{

/** Which coherence dialect the directory mirrors. */
enum class CohMode
{
    Mesi,         //!< invalidation-based (private MESI, NuRAPID w/o ISC)
    Mesic,        //!< MESI + C state: writes multicast to live sharers
    WriteUpdate,  //!< Dragon-style write-update baseline
};

/** Human-readable name of a CohMode. */
inline const char *
toString(CohMode m)
{
    switch (m) {
      case CohMode::Mesi: return "mesi";
      case CohMode::Mesic: return "mesic";
      case CohMode::WriteUpdate: return "writeUpdate";
    }
    cnsim_unreachable("CohMode");
}

/** One directory line: who may hold the block, and how. */
struct DirEntry
{
    /** Bit per core holding a copy. */
    std::uint64_t sharers = 0;
    /** Core whose copy services dirty data, invalid_id if none. */
    CoreId owner = invalid_id;
    /** True while an on-chip copy is newer than memory. */
    bool dirty = false;
};

/** Directory coherence + NoC timing behind the Interconnect interface. */
class DirectoryInterconnect : public Interconnect
{
  public:
    /**
     * @param kind Mesh or Ring.
     * @param cores Core (and NoC node, and home slice) count; <= 64.
     * @param block_size Coherence granularity for home striping.
     * @param mode Which dialect's membership rules to mirror.
     */
    DirectoryInterconnect(InterconnectKind kind, int cores,
                          unsigned block_size, CohMode mode,
                          const NocParams &p = NocParams{});

    using Interconnect::postedTransaction;
    using Interconnect::transaction;

    [[nodiscard]] Tick transaction(BusCmd cmd, CoreId src, Addr addr,
                                   Tick at) override;
    void postedTransaction(BusCmd cmd, CoreId src, Addr addr,
                           Tick at) override;

    [[nodiscard]] bool wantsEvictionNotices() const override
    {
        return true;
    }

    void regStats(StatGroup &group) override;
    void resetStats() override;
    void attachSink(obs::TraceSink *s) override;

    [[nodiscard]] std::uint64_t count(BusCmd cmd) const override
    {
        return counts[static_cast<int>(cmd)].value();
    }

    /** Nominal request/reply round trip across the fabric. */
    [[nodiscard]] Tick latency() const override;

    /** @return the home node of @p addr's block. */
    [[nodiscard]] int homeOf(Addr addr) const;

    // Test/auditor hooks -- read the mirrored membership directly.

    /** @return the sharer bitset for @p addr's block (0 if untracked). */
    [[nodiscard]] std::uint64_t sharersOf(Addr addr) const;
    /** @return the owner of @p addr's block, invalid_id if none. */
    [[nodiscard]] CoreId ownerOf(Addr addr) const;
    /** @return true if @p addr's block is dirty on chip. */
    [[nodiscard]] bool dirtyOf(Addr addr) const;
    /** @return tracked directory lines. */
    [[nodiscard]] std::size_t entries() const { return dir.size(); }

    [[nodiscard]] const Noc &noc() const { return net; }
    [[nodiscard]] CohMode mode() const { return coh_mode; }

    void saveState(sample::Writer &w) const override;
    void loadState(sample::Reader &r) override;

  private:
    /** Common path of transaction/postedTransaction. */
    Tick request(BusCmd cmd, CoreId src, Addr addr, Tick at);

    /** Multicast home -> each sharer in @p mask (skipping @p skip);
     *  with @p acks, wait for every ack back at home.
     *  @return the tick home has finished the fan-out. */
    Tick fanOut(std::uint64_t mask, CoreId skip, int home, Tick at,
                bool acks);

    /** A copy left core @p src: drop its membership, maybe the line.
     *  @p wrote_back distinguishes a writeback (memory is current
     *  again) from a clean departure (dirty survivors keep the bit). */
    void relinquish(DirEntry &e, CoreId src, Addr baddr, bool wrote_back);

    CohMode coh_mode;
    unsigned blk_shift;
    Noc net;
    FlatMap<Addr, DirEntry> dir;
    std::array<Counter, num_bus_cmds> counts;
    obs::TraceSink *sink = nullptr;
    int track = -1;
};

} // namespace cnsim

#endif // CNSIM_MEM_DIRECTORY_HH
