/**
 * @file
 * Main-memory timing model.
 *
 * The paper assumes 4 GB of memory with a 300-cycle access latency.
 * We model a fixed access latency plus a channel-occupancy term so that
 * miss bursts see realistic queueing rather than infinite bandwidth.
 */

#ifndef CNSIM_MEM_MEMORY_HH
#define CNSIM_MEM_MEMORY_HH

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/resource.hh"

namespace cnsim
{

/** Parameters for the main-memory model. */
struct MemoryParams
{
    /** Latency from grant to data return, in core cycles. */
    Tick latency = 300;
    /** Number of independent channels. */
    unsigned channels = 4;
    /** Ticks a channel is held per access (burst transfer time). */
    Tick occupancy = 16;
};

/** Fixed-latency, bandwidth-limited main memory. */
class MainMemory
{
  public:
    explicit MainMemory(const MemoryParams &p = MemoryParams{});

    /**
     * Issue a read (fill) at tick @p at.
     * @return the tick at which the data is available on chip.
     */
    [[nodiscard]] Tick read(Tick at);

    /**
     * Issue a writeback at tick @p at. Writebacks are buffered: they
     * consume channel bandwidth but do not stall the evicting cache.
     */
    void writeback(Tick at);

    void regStats(StatGroup &group);
    void resetStats();

    /** Emit channel-grant Resource events into @p s. */
    void attachSink(obs::TraceSink *s) { channels_res.attachSink(s, "mem.dram"); }

    [[nodiscard]] std::uint64_t reads() const { return n_reads.value(); }
    [[nodiscard]] std::uint64_t writebacks() const
    {
        return n_writebacks.value();
    }

    /** Serialize channel occupancy into a checkpoint. */
    void saveState(sample::Writer &w) const { channels_res.saveState(w); }

    /** Restore channel occupancy from a checkpoint. */
    void loadState(sample::Reader &r) { channels_res.loadState(r); }

  private:
    MemoryParams params;
    Resource channels_res;
    Counter n_reads;
    Counter n_writebacks;
};

} // namespace cnsim

#endif // CNSIM_MEM_MEMORY_HH
