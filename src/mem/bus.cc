#include "mem/bus.hh"

#include "obs/trace_sink.hh"

namespace cnsim
{

SnoopBus::SnoopBus(const BusParams &p)
    : params(p), slot("busSlot", 1)
{
}

Tick
SnoopBus::transaction(BusCmd cmd, Tick at)
{
    counts[static_cast<int>(cmd)].inc();
    Tick grant = slot.acquire(at, params.arbitration);
    if (sink)
        sink->busTx(grant, track, cmd, params.latency);
    return grant + params.latency;
}

void
SnoopBus::postedTransaction(BusCmd cmd, Tick at)
{
    counts[static_cast<int>(cmd)].inc();
    Tick grant = slot.acquire(at, params.arbitration);
    if (sink)
        sink->busTx(grant, track, cmd, params.latency);
}

void
SnoopBus::attachSink(obs::TraceSink *s)
{
    sink = s;
    track = s ? s->registerComponent("mem.bus") : -1;
    slot.attachSink(s, "mem.bus.slot");
}

void
SnoopBus::regStats(StatGroup &group)
{
    static const char *names[] = {"busRd", "busRdX", "busUpg", "busRepl",
                                  "wrBack", "busUpd"};
    for (int i = 0; i < num_bus_cmds; ++i)
        group.addCounter(std::string("bus.") + names[i], &counts[i],
                         "bus transactions");
    slot.regStats(group);
}

void
SnoopBus::resetStats()
{
    for (auto &c : counts)
        c.reset();
    slot.reset();
}

} // namespace cnsim
