#include "mem/bus.hh"

#include "obs/trace_sink.hh"
#include "sample/checkpoint.hh"

namespace cnsim
{

SnoopBus::SnoopBus(const BusParams &p)
    : params(p), slot("busSlot", 1)
{
}

Tick
SnoopBus::place(BusCmd cmd, Tick at)
{
    counts[static_cast<int>(cmd)].inc();
    Tick grant = slot.acquire(at, params.arbitration);
    if (sink)
        sink->busTx(grant, track, cmd, params.latency);
    return grant;
}

Tick
SnoopBus::transaction(BusCmd cmd, CoreId, Addr, Tick at)
{
    return place(cmd, at) + params.latency;
}

void
SnoopBus::postedTransaction(BusCmd cmd, CoreId, Addr, Tick at)
{
    (void)place(cmd, at);
}

void
SnoopBus::attachSink(obs::TraceSink *s)
{
    sink = s;
    track = s ? s->registerComponent("mem.bus") : -1;
    slot.attachSink(s, "mem.bus.slot");
}

void
SnoopBus::regStats(StatGroup &group)
{
    // statName's switch is exhaustive (-Wswitch-enum), so a BusCmd
    // addition that forgets the counter table can't mislabel anything;
    // this only guards the enumerator/count pairing itself.
    static_assert(static_cast<int>(BusCmd::DirPut) + 1 == num_bus_cmds,
                  "num_bus_cmds disagrees with the BusCmd enumerators");
    for (int i = 0; i < num_bus_cmds; ++i)
        group.addCounter(
            std::string("bus.") + statName(static_cast<BusCmd>(i)),
            &counts[i], "bus transactions");
    slot.regStats(group);
}

void
SnoopBus::resetStats()
{
    for (auto &c : counts)
        c.reset();
    slot.reset();
}

void
SnoopBus::saveState(sample::Writer &w) const
{
    slot.saveState(w);
}

void
SnoopBus::loadState(sample::Reader &r)
{
    slot.loadState(r);
}

} // namespace cnsim
