/**
 * @file
 * Abstract on-chip interconnect interface.
 *
 * The paper's platform couples the L2 organizations through a snooping
 * bus; past a handful of cores the bus serializes every coherence
 * action and becomes the scalability wall (ROADMAP item 1). This
 * interface lets the protocol-owning L2 organizations issue the same
 * logical transactions against either fabric:
 *
 *  - SnoopBus (mem/bus.hh): the paper's pipelined split-transaction
 *    bus. Timing and accounting only; `src`/`addr` are ignored, so the
 *    4-core configurations stay bit-identical to the pre-interface
 *    goldens.
 *  - DirectoryInterconnect (mem/directory.hh): home-node directories
 *    over a 2D-mesh (or ring) NoC, replacing broadcasts with
 *    multicast-to-sharers.
 *
 * Protocol *logic* (who responds, what state changes) stays in the L2
 * organizations, which have the global view; an Interconnect provides
 * timing, ordering, and per-command accounting. The directory
 * additionally mirrors sharer membership from the (cmd, src, addr)
 * stream, which is why the org-facing entry points carry the requestor
 * and block address.
 */

#ifndef CNSIM_MEM_INTERCONNECT_HH
#define CNSIM_MEM_INTERCONNECT_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/packet.hh"

namespace cnsim
{

namespace obs
{
class TraceSink;
} // namespace obs

namespace sample
{
class Writer;
class Reader;
} // namespace sample

/** Which interconnect fabric couples the L2 organizations. */
enum class InterconnectKind
{
    Bus,   //!< the paper's snooping bus (4-core baseline)
    Mesh,  //!< 2D mesh NoC with directory coherence
    Ring,  //!< 1D ring (degenerate mesh) with directory coherence
};

/** Human-readable name of an InterconnectKind. */
inline const char *
toString(InterconnectKind k)
{
    switch (k) {
      case InterconnectKind::Bus: return "bus";
      case InterconnectKind::Mesh: return "mesh";
      case InterconnectKind::Ring: return "ring";
    }
    cnsim_unreachable("InterconnectKind");
}

/** Timing/accounting model of the coherence interconnect. */
class Interconnect
{
  public:
    virtual ~Interconnect() = default;

    /**
     * Place a transaction of kind @p cmd for block @p addr on the
     * fabric at tick @p at, on behalf of core @p src (invalid_id for
     * anonymous timing-only traffic).
     *
     * @return the tick at which the transaction has been ordered,
     *         observed by every required party, and any combined
     *         response (shared/dirty signals, pointer return, data) is
     *         available at the requestor.
     */
    [[nodiscard]] virtual Tick transaction(BusCmd cmd, CoreId src,
                                           Addr addr, Tick at) = 0;

    /**
     * Place a transaction that does not stall the issuer (BusRepl,
     * writeback address phases, eviction notices).
     */
    virtual void postedTransaction(BusCmd cmd, CoreId src, Addr addr,
                                   Tick at) = 0;

    /** Anonymous timing-only transaction (micro-benchmarks, tests). */
    [[nodiscard]] Tick
    transaction(BusCmd cmd, Tick at)
    {
        return transaction(cmd, invalid_id, 0, at);
    }

    /** Anonymous timing-only posted transaction. */
    void
    postedTransaction(BusCmd cmd, Tick at)
    {
        postedTransaction(cmd, invalid_id, 0, at);
    }

    /**
     * True if the fabric tracks sharer membership and needs a DirPut
     * notice when a clean copy leaves a cache silently. The snooping
     * bus returns false, so the bus-coupled protocols stay exactly as
     * the paper describes them.
     */
    [[nodiscard]] virtual bool wantsEvictionNotices() const
    {
        return false;
    }

    virtual void regStats(StatGroup &group) = 0;
    virtual void resetStats() = 0;

    /** Emit transaction (and internal Resource) events into @p s. */
    virtual void attachSink(obs::TraceSink *s) = 0;

    /** Transactions of @p cmd since the last resetStats(). */
    [[nodiscard]] virtual std::uint64_t count(BusCmd cmd) const = 0;

    /** Nominal end-to-end visibility latency (energy/latency models). */
    [[nodiscard]] virtual Tick latency() const = 0;

    /** Serialize fabric state (slot/link occupancy, directory
     *  membership) into a checkpoint. */
    virtual void saveState(sample::Writer &w) const = 0;

    /** Restore fabric state from a checkpoint. */
    virtual void loadState(sample::Reader &r) = 0;
};

} // namespace cnsim

#endif // CNSIM_MEM_INTERCONNECT_HH
