/**
 * @file
 * Crossbar between the private tag arrays and the data d-groups.
 *
 * CMP-NuRAPID's tag arrays reach the shared data d-groups through a
 * crossbar (Figure 2), as in conventional banked caches. Each d-group
 * is single-ported and unpipelined (paper Section 3.3.2); the crossbar
 * permits parallel accesses to *different* d-groups while serializing
 * accesses to the same one.
 *
 * The per-(core, d-group) access latencies from Table 1 already include
 * the wire/routing delay through the crossbar, so the crossbar itself
 * adds only an optional fixed traversal latency (default 0).
 */

#ifndef CNSIM_MEM_CROSSBAR_HH
#define CNSIM_MEM_CROSSBAR_HH

#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/resource.hh"

namespace cnsim
{

/** Crossbar from per-core tag arrays to single-ported data d-groups. */
class Crossbar
{
  public:
    /**
     * @param num_dgroups Number of d-group endpoints.
     * @param traversal Extra fixed latency per traversal.
     */
    explicit Crossbar(int num_dgroups, Tick traversal = 0);

    /**
     * Access d-group @p dg at tick @p at, holding its port for
     * @p occupancy ticks.
     *
     * @return the tick at which the d-group access *begins* (after the
     *         crossbar traversal and any port queueing).
     */
    [[nodiscard]] Tick access(DGroupId dg, Tick at, Tick occupancy);

    void regStats(StatGroup &group);
    void resetStats();

    /** Emit per-d-group port-grant Resource events into @p s. */
    void attachSink(obs::TraceSink *s);

    [[nodiscard]] int numDGroups() const
    {
        return static_cast<int>(ports.size());
    }

    /** Serialize every d-group port's occupancy into a checkpoint. */
    void
    saveState(sample::Writer &w) const
    {
        for (const auto &p : ports)
            p->saveState(w);
    }

    /** Restore d-group port occupancy from a checkpoint. */
    void
    loadState(sample::Reader &r)
    {
        for (auto &p : ports)
            p->loadState(r);
    }

  private:
    Tick traversal;
    std::vector<std::unique_ptr<Resource>> ports;
    Counter n_accesses;
};

} // namespace cnsim

#endif // CNSIM_MEM_CROSSBAR_HH
