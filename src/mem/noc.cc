#include "mem/noc.hh"

#include "common/logging.hh"
#include "obs/trace_sink.hh"
#include "sample/checkpoint.hh"

namespace cnsim
{

namespace
{

/** Directed-link direction encoding; indexes Noc::links. */
enum Dir : int
{
    dir_e = 0,
    dir_w = 1,
    dir_n = 2,
    dir_s = 3,
};

const char *const dir_names[4] = {"e", "w", "n", "s"};

} // namespace

Noc::Noc(InterconnectKind kind, int nodes, const NocParams &params)
    : _kind(kind), p(params), n_nodes(nodes)
{
    cnsim_assert(kind != InterconnectKind::Bus,
                 "Noc models mesh/ring fabrics, not the bus");
    cnsim_assert(nodes >= 1, "NoC needs at least one node");
    if (kind == InterconnectKind::Ring) {
        w = n_nodes;
        h = 1;
    } else {
        // Most-square factorization: mesh dimensions w x h with w <= h.
        w = 1;
        for (int c = 1; c * c <= n_nodes; ++c)
            if (n_nodes % c == 0)
                w = c;
        h = n_nodes / w;
    }

    links.resize(static_cast<std::size_t>(n_nodes) * 4);
    for (int n = 0; n < n_nodes; ++n) {
        int x = n % w;
        int y = n / w;
        bool wrap = _kind == InterconnectKind::Ring && n_nodes > 1;
        bool has[4];
        has[dir_e] = wrap || x < w - 1;
        has[dir_w] = wrap || x > 0;
        has[dir_n] = y > 0;
        has[dir_s] = y < h - 1;
        for (int d = 0; d < 4; ++d) {
            if (!has[d])
                continue;
            links[static_cast<std::size_t>(n) * 4 + d] =
                std::make_unique<Resource>(
                    strfmt("noc.n%d.%s", n, dir_names[d]), 1);
        }
    }
}

Resource &
Noc::link(int node, int dir)
{
    Resource *r = links[static_cast<std::size_t>(node) * 4 + dir].get();
    cnsim_assert(r, "no %s link at node %d", dir_names[dir], node);
    return *r;
}

namespace
{

/**
 * Next direction on the deterministic route from @p node to @p dst:
 * shortest way around the ring (ties clockwise/east), dimension-ordered
 * XY (X first) in the mesh.
 */
int
nextDir(InterconnectKind kind, int w, int n_nodes, int node, int dst)
{
    if (kind == InterconnectKind::Ring) {
        int cw = (dst - node + n_nodes) % n_nodes;
        return cw * 2 <= n_nodes ? dir_e : dir_w;
    }
    int x = node % w;
    int dx = dst % w;
    if (x != dx)
        return dx > x ? dir_e : dir_w;
    return dst / w > node / w ? dir_s : dir_n;
}

/** Node reached from @p node via @p dir (ring wraps in X). */
int
step(InterconnectKind kind, int w, int n_nodes, int node, int dir)
{
    switch (dir) {
      case dir_e:
        return kind == InterconnectKind::Ring ? (node + 1) % n_nodes
                                              : node + 1;
      case dir_w:
        return kind == InterconnectKind::Ring
                   ? (node - 1 + n_nodes) % n_nodes
                   : node - 1;
      case dir_n:
        return node - w;
      case dir_s:
        return node + w;
    }
    cnsim_unreachable("link direction");
}

} // namespace

Tick
Noc::send(int src, int dst, Tick at)
{
    cnsim_assert(src >= 0 && src < n_nodes && dst >= 0 && dst < n_nodes,
                 "NoC send %d -> %d outside %d nodes", src, dst, n_nodes);
    n_msgs.inc();
    // A local message still pays the router pipeline to reach the
    // node's own cache/directory port.
    Tick t = at + p.router_delay;
    int node = src;
    while (node != dst) {
        int d = nextDir(_kind, w, n_nodes, node, dst);
        t = link(node, d).acquire(t, p.link_occupancy) + p.hop_latency +
            p.router_delay;
        node = step(_kind, w, n_nodes, node, d);
        n_hops.inc();
    }
    return t;
}

int
Noc::hopCount(int src, int dst) const
{
    cnsim_assert(src >= 0 && src < n_nodes && dst >= 0 && dst < n_nodes,
                 "NoC hopCount %d -> %d outside %d nodes", src, dst,
                 n_nodes);
    int hops = 0;
    int node = src;
    while (node != dst) {
        int d = nextDir(_kind, w, n_nodes, node, dst);
        node = step(_kind, w, n_nodes, node, d);
        ++hops;
    }
    return hops;
}

void
Noc::regStats(StatGroup &group)
{
    group.addCounter("noc.msgs", &n_msgs, "messages injected");
    group.addCounter("noc.hops", &n_hops, "link traversals");
    for (auto &l : links)
        if (l)
            l->regStats(group);
}

void
Noc::resetStats()
{
    n_msgs.reset();
    n_hops.reset();
    for (auto &l : links)
        if (l)
            l->reset();
}

void
Noc::attachSink(obs::TraceSink *s)
{
    for (auto &l : links)
        if (l)
            l->attachSink(s, "mem." + l->name());
}

void
Noc::saveState(sample::Writer &w_) const
{
    // Fixed iteration order (node * 4 + dir); geometry is derived from
    // the config, so only the occupancies travel.
    for (const auto &l : links)
        if (l)
            l->saveState(w_);
}

void
Noc::loadState(sample::Reader &r)
{
    for (auto &l : links)
        if (l)
            l->loadState(r);
}

} // namespace cnsim
