/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic choices in cnsim (random distance-replacement victims,
 * synthetic workload access streams, perturbation of memory timing for
 * multithreaded-variability runs) draw from explicitly seeded Rng
 * instances so every experiment is exactly reproducible.
 *
 * The generator is PCG32 (O'Neill, 2014): tiny state, excellent
 * statistical quality, and much faster than std::mt19937.
 */

#ifndef CNSIM_COMMON_RNG_HH
#define CNSIM_COMMON_RNG_HH

#include <cstdint>

namespace cnsim
{

/** A small, fast, deterministic PCG32 random number generator. */
class Rng
{
  public:
    /** Construct with a seed and an optional stream selector. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (stream << 1) | 1u;
        next();
        state += seed;
        next();
    }

    /** @return the next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** @return a uniform integer in [0, bound), bound > 0, unbiased. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        // Lemire's nearly-divisionless bounded generation.
        std::uint64_t m =
            static_cast<std::uint64_t>(next()) * static_cast<std::uint64_t>(bound);
        std::uint32_t l = static_cast<std::uint32_t>(m);
        if (l < bound) {
            std::uint32_t t = -bound % bound;
            while (l < t) {
                m = static_cast<std::uint64_t>(next()) *
                    static_cast<std::uint64_t>(bound);
                l = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32);
    }

    /** @return a uniform integer in the inclusive range [lo, hi]. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** @return true with probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Sample an approximate Zipf-like rank in [0, n).
     *
     * Realizes the discretized power law 1/(rank+1)^theta via a shared
     * O(1) alias table (common/zipf.hh); theta = 0 degenerates to
     * uniform, theta around 0.6-0.9 matches common workload skew. One
     * raw RNG value is consumed per draw, like the historical
     * inverse-CDF implementation this replaced. Hot generators should
     * hold the ZipfTable directly to skip the per-call cache lookup.
     */
    std::uint32_t zipf(std::uint32_t n, double theta);

    /** Raw generator state, for checkpoint save. */
    std::uint64_t stateWord() const { return state; }

    /** Raw stream selector, for checkpoint save. */
    std::uint64_t incWord() const { return inc; }

    /** Overwrite the generator state (checkpoint restore only). */
    void
    restoreState(std::uint64_t state_word, std::uint64_t inc_word)
    {
        state = state_word;
        inc = inc_word;
    }

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

} // namespace cnsim

#endif // CNSIM_COMMON_RNG_HH
