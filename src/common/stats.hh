/**
 * @file
 * A small statistics package for the simulator.
 *
 * Components register named statistics into a StatGroup; the group can
 * be dumped as aligned text or CSV, queried by name, and reset between
 * the warm-up and measurement phases of a run.
 *
 * Supported kinds:
 *  - Counter: a monotonically increasing event count.
 *  - Scalar: an arbitrary floating-point value.
 *  - Distribution: bucketed counts over a fixed integer range with
 *    underflow/overflow buckets (used for, e.g., reuse-count histograms).
 */

#ifndef CNSIM_COMMON_STATS_HH
#define CNSIM_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cnsim
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by @p n (default 1). */
    void inc(std::uint64_t n = 1) { _value += n; }

    /** @return the current count. */
    std::uint64_t value() const { return _value; }

    /** Reset to zero (end of warm-up). */
    void reset() { _value = 0; }

    /** Overwrite the count (checkpoint restore only). */
    void restore(std::uint64_t v) { _value = v; }

  private:
    std::uint64_t _value = 0;
};

/** An arbitrary scalar value. */
class Scalar
{
  public:
    Scalar() = default;

    void set(double v) { _value = v; }
    void add(double v) { _value += v; }
    double value() const { return _value; }
    void reset() { _value = 0.0; }

  private:
    double _value = 0.0;
};

/**
 * Bucketed counts over [min, max] with one bucket per @p bucket_size
 * values, plus underflow/overflow buckets for samples outside the
 * configured range.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Configure the bucket layout; must be called before sampling. */
    void
    init(std::uint64_t min, std::uint64_t max, std::uint64_t bucket_size)
    {
        cnsim_assert(bucket_size > 0 && max >= min, "bad distribution shape");
        _min = min;
        _max = max;
        _bucket = bucket_size;
        buckets.assign((max - min) / bucket_size + 1, 0);
        _underflow = 0;
        _overflow = 0;
        _samples = 0;
        _sum = 0;
    }

    /** Record one sample. */
    void
    sample(std::uint64_t v)
    {
        ++_samples;
        _sum += v;
        if (v < _min)
            ++_underflow;
        else if (v > _max)
            ++_overflow;
        else
            ++buckets[(v - _min) / _bucket];
    }

    std::uint64_t samples() const { return _samples; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    double mean() const
    {
        return _samples ? static_cast<double>(_sum) / _samples : 0.0;
    }

    /** @return the count of samples in the bucket containing @p v. */
    std::uint64_t
    bucketCount(std::uint64_t v) const
    {
        cnsim_assert(v >= _min && v <= _max, "bucket query out of range");
        return buckets[(v - _min) / _bucket];
    }

    /**
     * @return total samples in the inclusive value range [lo, hi],
     * clamped to the configured [min, max]; underflow/overflow samples
     * are never included.
     */
    std::uint64_t
    rangeCount(std::uint64_t lo, std::uint64_t hi) const
    {
        lo = std::max(lo, _min);
        hi = std::min(hi, _max);
        if (lo > hi)
            return 0;
        std::uint64_t total = 0;
        for (std::uint64_t b = (lo - _min) / _bucket;
             b <= (hi - _min) / _bucket; ++b)
            total += buckets[b];
        return total;
    }

    void
    reset()
    {
        for (auto &b : buckets)
            b = 0;
        _underflow = 0;
        _overflow = 0;
        _samples = 0;
        _sum = 0;
    }

  private:
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
    std::uint64_t _bucket = 1;
    std::vector<std::uint64_t> buckets;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _samples = 0;
    std::uint64_t _sum = 0;
};

/**
 * Numerically stable running mean/variance over a stream of doubles
 * (Welford's online algorithm). The textbook sum_sq/n - mean^2 form
 * cancels catastrophically for tightly clustered values -- exactly the
 * regime of perturbed-IPC variability runs -- and can even go
 * negative; Welford's update cannot.
 */
class RunningStats
{
  public:
    RunningStats() = default;

    /** Accumulate one observation. */
    void
    push(double x)
    {
        ++_n;
        if (_n == 1) {
            _min = _max = x;
        } else {
            _min = std::min(_min, x);
            _max = std::max(_max, x);
        }
        double delta = x - _mean;
        _mean += delta / _n;
        _m2 += delta * (x - _mean);
    }

    std::uint64_t count() const { return _n; }
    double mean() const { return _mean; }
    double min() const { return _min; }
    double max() const { return _max; }

    /** Sample (n-1) variance; 0 for fewer than two observations. */
    double
    sampleVariance() const
    {
        return _n > 1 ? std::max(_m2, 0.0) / static_cast<double>(_n - 1)
                      : 0.0;
    }

    /** Sample standard deviation. */
    double stddev() const { return std::sqrt(sampleVariance()); }

    /** Standard error of the mean; 0 for fewer than two observations. */
    double
    stderrMean() const
    {
        return _n > 1 ? stddev() / std::sqrt(static_cast<double>(_n)) : 0.0;
    }

    /**
     * Half-width of the 95% confidence interval on the mean, using the
     * Student-t distribution with n-1 degrees of freedom (the window
     * count in sampled runs is small, so the normal approximation
     * understates the interval). 0 for fewer than two observations.
     */
    double ci95HalfWidth() const;

    void
    reset()
    {
        _n = 0;
        _mean = 0.0;
        _m2 = 0.0;
        _min = 0.0;
        _max = 0.0;
    }

  private:
    std::uint64_t _n = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * A named collection of statistics owned by one simulated component.
 *
 * The group does not own the stat objects; components embed their stats
 * as members and register pointers, so the hot-path update is a plain
 * member increment.
 */
class StatGroup
{
  public:
    /** Create a group with a dotted-path name, e.g. "system.l2". */
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    void addCounter(const std::string &n, Counter *c, std::string desc = "");
    void addScalar(const std::string &n, Scalar *s, std::string desc = "");
    void addDistribution(const std::string &n, Distribution *d,
                         std::string desc = "");

    /** Look up a registered counter by name; panics if absent. */
    const Counter &counter(const std::string &n) const;
    /** Look up a registered scalar by name; panics if absent. */
    const Scalar &scalar(const std::string &n) const;
    /** Look up a registered distribution by name; panics if absent. */
    const Distribution &distribution(const std::string &n) const;

    /** @return true if a counter with this name exists. */
    bool hasCounter(const std::string &n) const
    {
        return counters.find(n) != nullptr;
    }

    /** Visit every registered counter in name order. */
    void
    forEachCounter(
        const std::function<void(const std::string &, const Counter *)>
            &fn) const
    {
        for (const auto &e : counters.v)
            fn(e.name, e.stat);
    }

    /** Visit every registered scalar in name order. */
    void
    forEachScalar(
        const std::function<void(const std::string &, const Scalar *)>
            &fn) const
    {
        for (const auto &e : scalars.v)
            fn(e.name, e.stat);
    }

    /** Reset every registered statistic (end of warm-up). */
    void resetAll();

    /** Render all statistics as aligned "name value  # desc" text. */
    std::string dump() const;

    /**
     * Render all statistics as CSV ("name,value" rows with a header),
     * for spreadsheet/plotting pipelines. Distributions emit their
     * sample count, mean, and overflow as separate rows.
     */
    std::string dumpCsv() const;

    const std::string &name() const { return _name; }

  private:
    /**
     * Name-sorted flat vector of registered stats. Registration is
     * cold; name lookups binary-search; iteration stays in name order
     * so dumps are deterministic -- all without the per-node
     * allocations and pointer chasing of std::map.
     */
    template <typename T>
    struct NamedTable
    {
        struct Entry
        {
            std::string name;
            T *stat;
            std::string desc;
        };
        std::vector<Entry> v;

        void
        set(const std::string &n, T *s, std::string desc)
        {
            auto it = lowerBound(n);
            if (it != v.end() && it->name == n) {
                it->stat = s;
                it->desc = std::move(desc);
            } else {
                v.insert(it, Entry{n, s, std::move(desc)});
            }
        }

        const Entry *
        find(const std::string &n) const
        {
            auto it = const_cast<NamedTable *>(this)->lowerBound(n);
            return it != v.end() && it->name == n ? &*it : nullptr;
        }

        typename std::vector<Entry>::iterator
        lowerBound(const std::string &n)
        {
            return std::lower_bound(
                v.begin(), v.end(), n,
                [](const Entry &e, const std::string &key) {
                    return e.name < key;
                });
        }
    };

    std::string _name;
    NamedTable<Counter> counters;
    NamedTable<Scalar> scalars;
    NamedTable<Distribution> dists;
};

} // namespace cnsim

#endif // CNSIM_COMMON_STATS_HH
