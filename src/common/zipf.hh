/**
 * @file
 * O(1) Zipf-like rank sampling via Walker/Vose alias tables.
 *
 * Rng::zipf historically inverted the power-law CDF per draw (a pow()
 * or exp() per sample). The distribution it realizes is a *discretized*
 * power law: rank k is drawn with the exact probability mass the
 * continuous inverse CDF assigns to the interval [k, k+1). An alias
 * table built from those same cell probabilities reproduces the
 * distribution while sampling in O(1) with a single 32-bit RNG draw --
 * the same RNG consumption as the old inversion, so generators that
 * interleave zipf draws with other draws keep their draw counts.
 *
 * Tables depend only on (n, theta); they are built once per distinct
 * pair, cached process-wide, and shared immutably (thread-safe: the
 * cache is mutex-protected, sampling is read-only).
 */

#ifndef CNSIM_COMMON_ZIPF_HH
#define CNSIM_COMMON_ZIPF_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"

namespace cnsim
{

/**
 * An immutable alias table over ranks [0, n) realizing the discretized
 * power-law distribution of Rng::zipf (theta > 0).
 */
class ZipfTable
{
  public:
    /**
     * Fetch the shared table for (@p n, @p theta) from the process-wide
     * cache, building it on first use. Requires n >= 1 and theta > 0
     * (theta <= 0 is uniform; use Rng::below directly).
     */
    static std::shared_ptr<const ZipfTable> get(std::uint32_t n,
                                                double theta);

    /** Draw one rank in [0, n); consumes exactly one raw RNG value. */
    std::uint32_t
    sample(Rng &rng) const
    {
        // One uniform drives both the column pick (integer part) and
        // the in-column coin flip (fractional part): the classic
        // single-draw alias lookup.
        double scaled = rng.uniform() * static_cast<double>(cells.size());
        auto col = static_cast<std::uint32_t>(scaled);
        if (col >= cells.size())
            col = static_cast<std::uint32_t>(cells.size()) - 1;
        const Cell &c = cells[col];
        return (scaled - static_cast<double>(col)) < c.cut ? col : c.alias;
    }

    /** Number of ranks (n). */
    std::uint32_t
    size() const
    {
        return static_cast<std::uint32_t>(cells.size());
    }

    /**
     * Exact probability mass the discretized power law assigns to rank
     * @p k -- the analytic cell probability the table is built from
     * (exposed for the distribution-regression test).
     */
    static double cellProbability(std::uint32_t k, std::uint32_t n,
                                  double theta);

    ZipfTable(const ZipfTable &) = delete;
    ZipfTable &operator=(const ZipfTable &) = delete;

  private:
    ZipfTable(std::uint32_t n, double theta);

    /** One alias column: stay if the fraction is below cut. */
    struct Cell
    {
        double cut;
        std::uint32_t alias;
    };

    std::vector<Cell> cells;
};

} // namespace cnsim

#endif // CNSIM_COMMON_ZIPF_HH
