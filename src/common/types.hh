/**
 * @file
 * Fundamental simulator-wide types and constants.
 *
 * Everything in the cnsim library counts time in processor clock cycles
 * ("ticks") at the simulated 5 GHz core frequency, and addresses byte
 * locations in a flat 64-bit physical address space.
 */

#ifndef CNSIM_COMMON_TYPES_HH
#define CNSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace cnsim
{

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier of a core (and of its private tag array / L1 caches). */
using CoreId = int;

/** Identifier of a data d-group in a distance-associative cache. */
using DGroupId = int;

/** A tick value no event will ever reach. */
constexpr Tick max_tick = std::numeric_limits<Tick>::max();

/** Marker for "no core" / "no d-group". */
constexpr int invalid_id = -1;

/**
 * Align an address down to the enclosing block of the given size.
 *
 * @param addr Any byte address.
 * @param block_size Block size in bytes; must be a power of two.
 * @return The address of the first byte of the enclosing block.
 */
constexpr Addr
blockAlign(Addr addr, unsigned block_size)
{
    return addr & ~static_cast<Addr>(block_size - 1);
}

/** @return true iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** @return floor(log2(v)) for nonzero @p v. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

} // namespace cnsim

#endif // CNSIM_COMMON_TYPES_HH
