#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <vector>

#include "common/thread_annotations.hh"

namespace cnsim
{

namespace
{
// The quiet flag is read concurrently by parallel experiment workers
// (sim/parallel_runner.cc), so it must be atomic. Each message below is
// emitted as one fprintf call, which stdio serializes per stream, so
// concurrent workers never interleave partial lines.
std::atomic<bool> quiet_flag{false};

/** Keys warnOnce() has already emitted, shared by every thread. */
struct WarnOnceRegistry
{
    Mutex mu;
    std::set<std::string> seen CNSIM_GUARDED_BY(mu);
};

WarnOnceRegistry &
warnOnceRegistry()
{
    static WarnOnceRegistry r;
    return r;
}
} // namespace

std::string
vstrfmt(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (n < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strfmt(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quiet_flag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quiet_flag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
warnOnce(const std::string &key, const char *fmt, ...)
{
    {
        WarnOnceRegistry &r = warnOnceRegistry();
        MutexLock lock(r.mu);
        if (!r.seen.insert(key).second)
            return;
    }
    if (quiet_flag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

} // namespace cnsim
