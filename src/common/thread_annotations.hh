/**
 * @file
 * Clang thread-safety-analysis annotations and the annotated mutex
 * types the concurrent subsystems use (DESIGN.md 3k).
 *
 * The macros wrap Clang's capability attributes and expand to nothing
 * under every other compiler, so the annotations cost nothing at
 * runtime and nothing on GCC. Under Clang with -Wthread-safety (the
 * clang-thread-safety CI job builds with -Werror) the compiler proves
 * that every CNSIM_GUARDED_BY member is only touched while its mutex
 * is held.
 *
 * std::mutex itself carries no capability attribute, so lock-protected
 * structures hold a cnsim::Mutex (an annotated zero-overhead wrapper)
 * and take scopes with cnsim::MutexLock. cnsim::Mutex satisfies
 * BasicLockable, so std::condition_variable_any waits on it directly.
 *
 * Two annotations are documentation-only and enforced for *presence*
 * (not consistency) by cnlint's CNL-C001 rule:
 *
 *   CNSIM_SYNC_NOTE("...")  -- the member is synchronized by a protocol
 *       the capability system cannot express (single-thread ownership,
 *       SPSC hand-off, release/acquire publication); the string names
 *       the protocol.
 *
 * Every class holding a mutex or an atomic must annotate each of its
 * other mutable members with CNSIM_GUARDED_BY, CNSIM_PT_GUARDED_BY, or
 * CNSIM_SYNC_NOTE (CNL-C001), so the synchronization story of every
 * shared structure is written next to the data it covers.
 */

#ifndef CNSIM_COMMON_THREAD_ANNOTATIONS_HH
#define CNSIM_COMMON_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define CNSIM_TSA(x) __attribute__((x))
#else
#define CNSIM_TSA(x)
#endif

/** Marks a type as a lockable capability (Clang TSA). */
#define CNSIM_CAPABILITY(x) CNSIM_TSA(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define CNSIM_SCOPED_CAPABILITY CNSIM_TSA(scoped_lockable)

/** The member may only be accessed while holding @p x. */
#define CNSIM_GUARDED_BY(x) CNSIM_TSA(guarded_by(x))

/** The pointee may only be accessed while holding @p x (the pointer
 *  itself is freely readable, e.g. for a null check). */
#define CNSIM_PT_GUARDED_BY(x) CNSIM_TSA(pt_guarded_by(x))

/** The function may only be called while holding the capabilities. */
#define CNSIM_REQUIRES(...) CNSIM_TSA(requires_capability(__VA_ARGS__))

/** The function acquires the capabilities and does not release them. */
#define CNSIM_ACQUIRE(...) CNSIM_TSA(acquire_capability(__VA_ARGS__))

/** The function releases the capabilities. */
#define CNSIM_RELEASE(...) CNSIM_TSA(release_capability(__VA_ARGS__))

/** The function acquires the capability iff it returns @p ret. */
#define CNSIM_TRY_ACQUIRE(...) CNSIM_TSA(try_acquire_capability(__VA_ARGS__))

/** The function must NOT be called while holding the capabilities
 *  (deadlock guard for functions that take the lock themselves). */
#define CNSIM_EXCLUDES(...) CNSIM_TSA(locks_excluded(__VA_ARGS__))

/** Opt a function out of the analysis (use sparingly, with a reason). */
#define CNSIM_NO_THREAD_SAFETY_ANALYSIS CNSIM_TSA(no_thread_safety_analysis)

/**
 * Documentation-only: the member is synchronized by the protocol named
 * in @p reason rather than by a capability Clang can check. cnlint's
 * CNL-C001 accepts it as a thread-safety annotation.
 */
#define CNSIM_SYNC_NOTE(reason)

namespace cnsim
{

/**
 * Zero-overhead std::mutex wrapper carrying Clang's capability
 * attribute, so CNSIM_GUARDED_BY members can name it and the analysis
 * can track it. BasicLockable: std::condition_variable_any waits on it
 * directly.
 */
class CNSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() CNSIM_ACQUIRE() { m.lock(); }
    void unlock() CNSIM_RELEASE() { m.unlock(); }
    bool try_lock() CNSIM_TRY_ACQUIRE(true) { return m.try_lock(); }

  private:
    std::mutex m;
};

/**
 * RAII lock scope over a cnsim::Mutex (the std::lock_guard shape, but
 * annotated as a scoped capability so Clang tracks the critical
 * section's extent).
 */
class CNSIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) CNSIM_ACQUIRE(m) : mu(m) { mu.lock(); }
    ~MutexLock() CNSIM_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

} // namespace cnsim

#endif // CNSIM_COMMON_THREAD_ANNOTATIONS_HH
