/**
 * @file
 * Open-addressing hash map for hot-path bookkeeping.
 *
 * `std::unordered_map` pays one heap allocation and one pointer chase
 * per node; on per-access paths (the auditor's block table, the
 * NuRAPID invariant sweep) that dominates the probe cost itself.
 * FlatMap stores key/value pairs inline in a power-of-two slot array
 * with linear probing, a one-byte control array (empty / tombstone /
 * full), and tombstone-aware rehashing at 7/8 load. Iteration order is
 * unspecified -- callers that need deterministic output must sort (see
 * obs::ProtocolAuditor::runDeferredChecks).
 *
 * Requirements: K equality-comparable, K and V default-constructible
 * and assignable. The default hasher covers integral keys with a
 * splitmix64 finalizer (addresses are strided, so identity hashing
 * would cluster probes).
 */

#ifndef CNSIM_COMMON_FLAT_MAP_HH
#define CNSIM_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace cnsim
{

/** splitmix64 finalizer: full-avalanche mix for integral keys. */
struct FlatHash
{
    std::size_t
    operator()(std::uint64_t x) const
    {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(x ^ (x >> 31));
    }
};

template <typename K, typename V, typename Hash = FlatHash>
class FlatMap
{
  public:
    FlatMap() = default;

    V &
    operator[](const K &key)
    {
        maybeGrow();
        std::size_t idx = probe(key);
        if (ctrl[idx] != ctrl_full) {
            if (ctrl[idx] == ctrl_tomb)
                --tombs;
            ctrl[idx] = ctrl_full;
            slots[idx].first = key;
            slots[idx].second = V{};
            ++count;
        }
        return slots[idx].second;
    }

    [[nodiscard]] V *
    find(const K &key)
    {
        if (!count)
            return nullptr;
        std::size_t idx = findSlot(key);
        return idx == npos ? nullptr : &slots[idx].second;
    }

    [[nodiscard]] const V *
    find(const K &key) const
    {
        return const_cast<FlatMap *>(this)->find(key);
    }

    bool
    erase(const K &key)
    {
        if (!count)
            return false;
        std::size_t idx = findSlot(key);
        if (idx == npos)
            return false;
        ctrl[idx] = ctrl_tomb;
        slots[idx] = {};
        --count;
        ++tombs;
        return true;
    }

    [[nodiscard]] std::size_t size() const { return count; }
    [[nodiscard]] bool empty() const { return count == 0; }
    /** @return slot-array length (for load/rehash tests). */
    [[nodiscard]] std::size_t capacity() const { return slots.size(); }

    void
    clear()
    {
        ctrl.assign(ctrl.size(), ctrl_empty);
        for (auto &s : slots)
            s = {};
        count = 0;
        tombs = 0;
    }

    void
    reserve(std::size_t n)
    {
        std::size_t want = min_capacity;
        // Size so n entries stay under the 7/8 load threshold.
        while (want * 7 < n * 8)
            want <<= 1;
        if (want > slots.size())
            rehash(want);
    }

    /** Visit every (key, value) pair; unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i)
            if (ctrl[i] == ctrl_full)
                fn(slots[i].first, slots[i].second);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < slots.size(); ++i)
            if (ctrl[i] == ctrl_full)
                fn(slots[i].first, slots[i].second);
    }

  private:
    static constexpr std::uint8_t ctrl_empty = 0;
    static constexpr std::uint8_t ctrl_tomb = 1;
    static constexpr std::uint8_t ctrl_full = 2;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    static constexpr std::size_t min_capacity = 16;

    /** @return the slot of @p key, or npos. */
    std::size_t
    findSlot(const K &key) const
    {
        std::size_t mask = slots.size() - 1;
        std::size_t idx = hasher(key) & mask;
        while (ctrl[idx] != ctrl_empty) {
            if (ctrl[idx] == ctrl_full && slots[idx].first == key)
                return idx;
            idx = (idx + 1) & mask;
        }
        return npos;
    }

    /**
     * @return the slot @p key occupies, or the slot an insert should
     * use (first tombstone on the probe path, else the terminating
     * empty slot). Requires a non-full table.
     */
    std::size_t
    probe(const K &key) const
    {
        std::size_t mask = slots.size() - 1;
        std::size_t idx = hasher(key) & mask;
        std::size_t first_tomb = npos;
        while (ctrl[idx] != ctrl_empty) {
            if (ctrl[idx] == ctrl_full && slots[idx].first == key)
                return idx;
            if (ctrl[idx] == ctrl_tomb && first_tomb == npos)
                first_tomb = idx;
            idx = (idx + 1) & mask;
        }
        return first_tomb != npos ? first_tomb : idx;
    }

    void
    maybeGrow()
    {
        if (slots.empty()) {
            rehash(min_capacity);
            return;
        }
        // Rehash at 7/8 load counting tombstones, so probe chains stay
        // short even under heavy erase churn. If live entries alone
        // are under half the table, rehash at the same size to purge
        // tombstones instead of doubling.
        if ((count + tombs + 1) * 8 >= slots.size() * 7)
            rehash(count * 2 >= slots.size() ? slots.size() * 2
                                             : slots.size());
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<std::uint8_t> old_ctrl = std::move(ctrl);
        std::vector<std::pair<K, V>> old_slots = std::move(slots);
        ctrl.assign(new_cap, ctrl_empty);
        slots.assign(new_cap, {});
        tombs = 0;
        std::size_t mask = new_cap - 1;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_ctrl[i] != ctrl_full)
                continue;
            std::size_t idx = hasher(old_slots[i].first) & mask;
            while (ctrl[idx] == ctrl_full)
                idx = (idx + 1) & mask;
            ctrl[idx] = ctrl_full;
            slots[idx] = std::move(old_slots[i]);
        }
    }

    std::vector<std::uint8_t> ctrl;
    std::vector<std::pair<K, V>> slots;
    std::size_t count = 0;
    std::size_t tombs = 0;
    [[no_unique_address]] Hash hasher;
};

} // namespace cnsim

#endif // CNSIM_COMMON_FLAT_MAP_HH
