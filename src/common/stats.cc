#include "common/stats.hh"

#include <sstream>

namespace cnsim
{

double
RunningStats::ci95HalfWidth() const
{
    if (_n < 2)
        return 0.0;
    // Two-sided 97.5% Student-t quantiles for df = n-1. Sampled runs
    // use a handful of measurement windows, squarely in the small-df
    // regime; beyond df = 30 the normal quantile is within 2%.
    static const double t975[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    std::uint64_t df = _n - 1;
    double t = df <= 30 ? t975[df] : 1.96;
    return t * stderrMean();
}

void
StatGroup::addCounter(const std::string &n, Counter *c, std::string desc)
{
    cnsim_assert(c != nullptr, "null counter '%s'", n.c_str());
    counters.set(n, c, std::move(desc));
}

void
StatGroup::addScalar(const std::string &n, Scalar *s, std::string desc)
{
    cnsim_assert(s != nullptr, "null scalar '%s'", n.c_str());
    scalars.set(n, s, std::move(desc));
}

void
StatGroup::addDistribution(const std::string &n, Distribution *d,
                           std::string desc)
{
    cnsim_assert(d != nullptr, "null distribution '%s'", n.c_str());
    dists.set(n, d, std::move(desc));
}

const Counter &
StatGroup::counter(const std::string &n) const
{
    const auto *e = counters.find(n);
    if (!e)
        panic("no counter '%s' in group '%s'", n.c_str(), _name.c_str());
    return *e->stat;
}

const Scalar &
StatGroup::scalar(const std::string &n) const
{
    const auto *e = scalars.find(n);
    if (!e)
        panic("no scalar '%s' in group '%s'", n.c_str(), _name.c_str());
    return *e->stat;
}

const Distribution &
StatGroup::distribution(const std::string &n) const
{
    const auto *e = dists.find(n);
    if (!e)
        panic("no distribution '%s' in group '%s'", n.c_str(), _name.c_str());
    return *e->stat;
}

void
StatGroup::resetAll()
{
    for (auto &e : counters.v)
        e.stat->reset();
    for (auto &e : scalars.v)
        e.stat->reset();
    for (auto &e : dists.v)
        e.stat->reset();
}

std::string
StatGroup::dumpCsv() const
{
    std::ostringstream os;
    os << "stat,value\n";
    for (const auto &e : counters.v) {
        os << _name << "." << e.name << "," << e.stat->value() << "\n";
    }
    for (const auto &e : scalars.v) {
        os << _name << "." << e.name << ","
           << strfmt("%.6f", e.stat->value()) << "\n";
    }
    for (const auto &e : dists.v) {
        const Distribution &d = *e.stat;
        os << _name << "." << e.name << ".samples," << d.samples()
           << "\n";
        os << _name << "." << e.name << ".mean,"
           << strfmt("%.6f", d.mean()) << "\n";
        os << _name << "." << e.name << ".underflow," << d.underflow()
           << "\n";
        os << _name << "." << e.name << ".overflow," << d.overflow()
           << "\n";
    }
    return os.str();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &e : counters.v) {
        os << strfmt("%-48s %20llu", (_name + "." + e.name).c_str(),
                     static_cast<unsigned long long>(e.stat->value()));
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : scalars.v) {
        os << strfmt("%-48s %20.6f", (_name + "." + e.name).c_str(),
                     e.stat->value());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    for (const auto &e : dists.v) {
        const Distribution &d = *e.stat;
        os << strfmt("%-48s samples=%llu mean=%.3f underflow=%llu "
                     "overflow=%llu",
                     (_name + "." + e.name).c_str(),
                     static_cast<unsigned long long>(d.samples()), d.mean(),
                     static_cast<unsigned long long>(d.underflow()),
                     static_cast<unsigned long long>(d.overflow()));
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << "\n";
    }
    return os.str();
}

} // namespace cnsim
