#include "common/stats.hh"

#include <sstream>

namespace cnsim
{

void
StatGroup::addCounter(const std::string &n, Counter *c, std::string desc)
{
    cnsim_assert(c != nullptr, "null counter '%s'", n.c_str());
    counters[n] = {c, std::move(desc)};
}

void
StatGroup::addScalar(const std::string &n, Scalar *s, std::string desc)
{
    cnsim_assert(s != nullptr, "null scalar '%s'", n.c_str());
    scalars[n] = {s, std::move(desc)};
}

void
StatGroup::addDistribution(const std::string &n, Distribution *d,
                           std::string desc)
{
    cnsim_assert(d != nullptr, "null distribution '%s'", n.c_str());
    dists[n] = {d, std::move(desc)};
}

const Counter &
StatGroup::counter(const std::string &n) const
{
    auto it = counters.find(n);
    if (it == counters.end())
        panic("no counter '%s' in group '%s'", n.c_str(), _name.c_str());
    return *it->second.first;
}

const Scalar &
StatGroup::scalar(const std::string &n) const
{
    auto it = scalars.find(n);
    if (it == scalars.end())
        panic("no scalar '%s' in group '%s'", n.c_str(), _name.c_str());
    return *it->second.first;
}

const Distribution &
StatGroup::distribution(const std::string &n) const
{
    auto it = dists.find(n);
    if (it == dists.end())
        panic("no distribution '%s' in group '%s'", n.c_str(), _name.c_str());
    return *it->second.first;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters)
        kv.second.first->reset();
    for (auto &kv : scalars)
        kv.second.first->reset();
    for (auto &kv : dists)
        kv.second.first->reset();
}

std::string
StatGroup::dumpCsv() const
{
    std::ostringstream os;
    os << "stat,value\n";
    for (const auto &kv : counters) {
        os << _name << "." << kv.first << ","
           << kv.second.first->value() << "\n";
    }
    for (const auto &kv : scalars) {
        os << _name << "." << kv.first << ","
           << strfmt("%.6f", kv.second.first->value()) << "\n";
    }
    for (const auto &kv : dists) {
        const Distribution &d = *kv.second.first;
        os << _name << "." << kv.first << ".samples," << d.samples()
           << "\n";
        os << _name << "." << kv.first << ".mean,"
           << strfmt("%.6f", d.mean()) << "\n";
        os << _name << "." << kv.first << ".underflow," << d.underflow()
           << "\n";
        os << _name << "." << kv.first << ".overflow," << d.overflow()
           << "\n";
    }
    return os.str();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters) {
        os << strfmt("%-48s %20llu", (_name + "." + kv.first).c_str(),
                     static_cast<unsigned long long>(kv.second.first->value()));
        if (!kv.second.second.empty())
            os << "  # " << kv.second.second;
        os << "\n";
    }
    for (const auto &kv : scalars) {
        os << strfmt("%-48s %20.6f", (_name + "." + kv.first).c_str(),
                     kv.second.first->value());
        if (!kv.second.second.empty())
            os << "  # " << kv.second.second;
        os << "\n";
    }
    for (const auto &kv : dists) {
        const Distribution &d = *kv.second.first;
        os << strfmt("%-48s samples=%llu mean=%.3f underflow=%llu "
                     "overflow=%llu",
                     (_name + "." + kv.first).c_str(),
                     static_cast<unsigned long long>(d.samples()), d.mean(),
                     static_cast<unsigned long long>(d.underflow()),
                     static_cast<unsigned long long>(d.overflow()));
        if (!kv.second.second.empty())
            os << "  # " << kv.second.second;
        os << "\n";
    }
    return os.str();
}

} // namespace cnsim
