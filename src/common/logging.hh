/**
 * @file
 * Error reporting and status messages, in the gem5 tradition.
 *
 * panic()  -- an internal simulator invariant was violated (a cnsim bug);
 *             aborts so the failure can be debugged.
 * fatal()  -- the simulation cannot continue because of a user error
 *             (bad configuration, impossible parameters); exits cleanly.
 * warn()   -- something is modelled approximately; simulation continues.
 * inform() -- normal operating status.
 *
 * All functions take a printf-style format string.
 *
 * Thread-safety: every function here may be called from parallel
 * experiment workers. The quiet flag is atomic, and each message is
 * emitted as a single stdio call, so lines never interleave.
 */

#ifndef CNSIM_COMMON_LOGGING_HH
#define CNSIM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cnsim
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vstrfmt(const char *fmt, std::va_list args);

/**
 * Report an internal invariant violation and abort.
 * Use for conditions that indicate a bug in cnsim itself.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 * Use for conditions that are the user's fault, not a simulator bug.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a condition that is modelled imperfectly but survivable. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * warn(), deduplicated process-wide by @p key: the first caller wins,
 * every later call with the same key is silent. For conditions every
 * parallel sweep worker hits identically (a wrapped replay trace, an
 * approximated model), where per-worker repetition is pure noise.
 */
void warnOnce(const std::string &key, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence inform()/warn() output (used by tests and benches). */
void setQuiet(bool quiet);

/** @return true when inform()/warn() output is suppressed. */
bool quiet();

/**
 * Assert a simulator invariant; on failure, panic with location info.
 * Active in all build types: the invariants guard protocol correctness,
 * and the simulator is fast enough to keep them on.
 */
#define cnsim_assert(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cnsim::panic("assertion '%s' failed at %s:%d: %s", #cond,     \
                           __FILE__, __LINE__,                              \
                           ::cnsim::strfmt(__VA_ARGS__).c_str());           \
        }                                                                   \
    } while (0)

/**
 * Mark a code path the author has proven dead (typically after an
 * exhaustive switch over an enum). Panics loudly if ever reached --
 * e.g. when a new enum value is added without extending the switch --
 * instead of silently returning a masking fallback value.
 */
#define cnsim_unreachable(what)                                             \
    ::cnsim::panic("unreachable %s at %s:%d", (what), __FILE__, __LINE__)

} // namespace cnsim

#endif // CNSIM_COMMON_LOGGING_HH
