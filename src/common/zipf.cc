#include "common/zipf.hh"

#include <cmath>
#include <map>
#include <utility>

#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace cnsim
{

namespace
{

/**
 * CDF of the discretized sampler at rank k: the probability that the
 * continuous inverse-CDF draw lands below k+1. Mirrors the two analytic
 * branches of the historical Rng::zipf inversion exactly, including its
 * top-rank clamp (cdf(n-1) == 1).
 */
double
discreteCdf(std::uint32_t k, std::uint32_t n, double theta)
{
    if (k + 1 >= n)
        return 1.0;
    double one_minus = 1.0 - theta;
    if (one_minus > 1e-9) {
        // x = n * u^(1/(1-theta))  =>  P(x < k+1) = ((k+1)/n)^(1-theta)
        return std::pow(static_cast<double>(k + 1) /
                            static_cast<double>(n),
                        one_minus);
    }
    // theta == 1: x = exp(u * ln(n+1)) - 1  =>  P = ln(k+2)/ln(n+1)
    return std::log(static_cast<double>(k) + 2.0) /
           std::log(static_cast<double>(n) + 1.0);
}

struct TableCache
{
    Mutex mutex;
    std::map<std::pair<std::uint32_t, double>,
             std::shared_ptr<const ZipfTable>>
        tables CNSIM_GUARDED_BY(mutex);
};

TableCache &
tableCache()
{
    static TableCache c;
    return c;
}

} // namespace

double
ZipfTable::cellProbability(std::uint32_t k, std::uint32_t n, double theta)
{
    cnsim_assert(k < n, "rank %u out of range [0, %u)", k, n);
    double lo = k == 0 ? 0.0 : discreteCdf(k - 1, n, theta);
    return discreteCdf(k, n, theta) - lo;
}

ZipfTable::ZipfTable(std::uint32_t n, double theta) : cells(n)
{
    cnsim_assert(n >= 1, "zipf needs at least one rank");
    cnsim_assert(theta > 0.0, "alias table is for skewed draws only");

    // Vose's alias method: split ranks into under- and over-full
    // columns of the n-scaled probabilities and pair them up.
    std::vector<double> scaled(n);
    double prev = 0.0;
    for (std::uint32_t k = 0; k < n; ++k) {
        double c = discreteCdf(k, n, theta);
        scaled[k] = (c - prev) * static_cast<double>(n);
        prev = c;
    }

    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    // Walk ranks high-to-low so the stacks pop low ranks (the probable
    // ones) first; pairing order only affects rounding placement, not
    // the realized distribution beyond double precision.
    for (std::uint32_t k = n; k-- > 0;) {
        if (scaled[k] < 1.0)
            small.push_back(k);
        else
            large.push_back(k);
    }
    while (!small.empty() && !large.empty()) {
        std::uint32_t s = small.back();
        small.pop_back();
        std::uint32_t l = large.back();
        large.pop_back();
        cells[s].cut = scaled[s];
        cells[s].alias = l;
        scaled[l] -= 1.0 - scaled[s];
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    // Leftovers are exactly-full columns up to rounding.
    for (std::uint32_t s : small) {
        cells[s].cut = 1.0;
        cells[s].alias = s;
    }
    for (std::uint32_t l : large) {
        cells[l].cut = 1.0;
        cells[l].alias = l;
    }
}

std::shared_ptr<const ZipfTable>
ZipfTable::get(std::uint32_t n, double theta)
{
    cnsim_assert(n >= 1, "zipf needs at least one rank");
    cnsim_assert(theta > 0.0, "alias table is for skewed draws only");
    TableCache &c = tableCache();
    MutexLock lock(c.mutex);
    auto key = std::make_pair(n, theta);
    auto it = c.tables.find(key);
    if (it != c.tables.end())
        return it->second;
    std::shared_ptr<const ZipfTable> t(new ZipfTable(n, theta));
    c.tables.emplace(key, t);
    return t;
}

std::uint32_t
Rng::zipf(std::uint32_t n, double theta)
{
    if (theta <= 0.0)
        return below(n);
    return ZipfTable::get(n, theta)->sample(*this);
}

} // namespace cnsim
