/**
 * @file
 * MESIC protocol walkthrough. Installs CmpNurapid's trace hook and
 * replays the paper's running examples step by step:
 *
 *   Figure 3 (controlled replication): P0 fills X; P1 read-misses and
 *   receives a pointer (tag copy, no data copy); P1's second use
 *   replicates X into its closest d-group.
 *
 *   Section 3.2 (in-situ communication): P0 writes Y; P1 reads it (the
 *   copy migrates next to P1 and both enter C); P0 keeps writing and
 *   P1 keeps reading with no coherence misses; a write to a clean
 *   shared block upgrades into C via BusUpg.
 */

#include <cstdio>

#include "mem/bus.hh"
#include "mem/memory.hh"
#include "nurapid/cmp_nurapid.hh"

using namespace cnsim;

namespace
{

CmpNurapid *g_l2 = nullptr;

void
showState(Addr a, const char *name)
{
    std::printf("    %s: states[", name);
    for (CoreId c = 0; c < 4; ++c)
        std::printf("%c", stateChar(g_l2->stateOf(c, a)));
    FwdPtr f0 = g_l2->fwdOf(0, a);
    FwdPtr f1 = g_l2->fwdOf(1, a);
    std::printf("] frames=%d", g_l2->framesHolding(a));
    if (f0.valid())
        std::printf(" P0->dg%c", 'a' + f0.dgroup);
    if (f1.valid())
        std::printf(" P1->dg%c", 'a' + f1.dgroup);
    std::printf("\n");
}

void
step(const char *what, const MemAccess &acc, Tick t)
{
    std::printf("  %s\n", what);
    AccessResult r = g_l2->access(acc, t);
    std::printf("    -> %s, done at tick %llu%s\n", toString(r.cls),
                (unsigned long long)r.complete,
                r.l1WriteThrough ? " (L1 write-through)" : "");
}

} // namespace

int
main()
{
    NurapidParams p;
    MainMemory mem;
    SnoopBus bus;
    CmpNurapid l2(p, bus, mem);
    g_l2 = &l2;
    l2.setL1Hooks([](CoreId, Addr) {}, [](CoreId, Addr, bool) {});
    l2.traceHook = [](const std::string &s) {
        std::printf("    [protocol] %s\n", s.c_str());
    };

    const Addr X = 0x1000;
    const Addr Y = 0x2000;

    std::printf("=== Controlled replication (paper Figure 3) ===\n");
    step("P0 reads X (cold miss: fill E into d-group a)",
         {0, X, MemOp::Load}, 0);
    showState(X, "X");
    step("P1 reads X (first use: pointer return, tag copy only)",
         {1, X, MemOp::Load}, 1000);
    showState(X, "X");
    step("P1 reads X again (second use: replicate into d-group b)",
         {1, X, MemOp::Load}, 2000);
    showState(X, "X");

    std::printf("\n=== In-situ communication (paper Section 3.2) ===\n");
    step("P0 writes Y (cold write miss: fill M)", {0, Y, MemOp::Store},
         10000);
    showState(Y, "Y");
    step("P1 reads Y (dirty signal: join C, copy moves next to P1)",
         {1, Y, MemOp::Load}, 11000);
    showState(Y, "Y");
    step("P0 writes Y again (stays C; BusRdX invalidates P1's L1)",
         {0, Y, MemOp::Store}, 12000);
    showState(Y, "Y");
    step("P1 reads Y again (hit in its closest d-group, no coherence miss)",
         {1, Y, MemOp::Load}, 13000);
    showState(Y, "Y");

    std::printf("\n=== Upgrade into C (write to a clean shared block) ===\n");
    step("P2 reads X (pointer join)", {2, X, MemOp::Load}, 20000);
    step("P2 writes X (BusUpg: all sharers repoint and enter C)",
         {2, X, MemOp::Store}, 21000);
    showState(X, "X");

    l2.checkInvariants();
    std::printf("\nfinal stats: pointerJoins=%llu replications=%llu "
                "iscJoins=%llu cWrites=%llu busRepl=%llu\n",
                (unsigned long long)l2.pointerJoins(),
                (unsigned long long)l2.replications(),
                (unsigned long long)l2.iscJoins(),
                (unsigned long long)l2.busRepls(),
                (unsigned long long)l2.demotions());
    return 0;
}
