/**
 * @file
 * Latency explorer: uses the CactiLite model to answer "what if"
 * questions around Table 1 -- how cache latency scales with capacity,
 * what the tag-capacity factor costs, and how the d-group latencies
 * would change at other cache sizes or clock frequencies.
 */

#include <cstdio>

#include "cactilite/cactilite.hh"

using namespace cnsim;

int
main()
{
    constexpr std::uint64_t MB = 1024ull * 1024;
    CactiLite m;

    std::printf("Cache latency vs capacity (70 nm, 5 GHz, 128 B blocks)\n");
    std::printf("%8s %8s %8s %8s\n", "size", "tag", "data", "total");
    for (std::uint64_t s = 1; s <= 16; s *= 2) {
        CacheLatency l = m.privateCache(s * MB, 128);
        std::printf("%6lluMB %8llu %8llu %8llu\n",
                    (unsigned long long)s, (unsigned long long)l.tag,
                    (unsigned long long)l.data,
                    (unsigned long long)l.total);
    }

    std::printf("\nCMP-NuRAPID tag latency vs tag-capacity factor "
                "(2 MB per-core share)\n");
    std::printf("%8s %8s   %s\n", "factor", "cycles", "total-cache overhead");
    for (unsigned f : {1u, 2u, 4u}) {
        // Tag bytes as a fraction of the 8 MB + tags total.
        double tag_bytes = 4.0 * (2.0 * MB / 128) * f * 4;  // 4 cores
        double overhead = tag_bytes / (8.0 * MB) * 100.0;
        std::printf("%7ux %8llu   %.1f%% %s\n", f,
                    (unsigned long long)m.nurapidTagCycles(2 * MB, 128, f),
                    overhead,
                    f == 2 ? "(paper's choice: ~6%)"
                           : (f == 4 ? "(paper rejects: ~23%, slower)" : ""));
    }

    std::printf("\nD-group latencies vs d-group size (closest/middle/"
                "farthest from a core)\n");
    for (std::uint64_t s = 1; s <= 4; s *= 2) {
        DGroupLatencies d = m.dgroupLatencies(s * MB);
        std::printf("%6lluMB  %llu / %llu / %llu cycles\n",
                    (unsigned long long)s, (unsigned long long)d.closest,
                    (unsigned long long)d.middle,
                    (unsigned long long)d.farthest);
    }

    std::printf("\nClock sweep for the 8 MB shared cache "
                "(same physical design)\n");
    for (double ghz : {2.5, 5.0, 7.5}) {
        TechParams tp;
        tp.clock_ghz = ghz;
        CactiLite mm(tp);
        CacheLatency l = mm.sharedCache(8 * MB, 128);
        std::printf("%5.1f GHz: tag %llu, data %llu, total %llu cycles; "
                    "bus %llu\n",
                    ghz, (unsigned long long)l.tag,
                    (unsigned long long)l.data, (unsigned long long)l.total,
                    (unsigned long long)mm.busCycles(8 * MB));
    }
    return 0;
}
