/**
 * @file
 * Capacity stealing under the hood. Drives a CMP-NuRAPID cache
 * directly (no Runner) with an asymmetric multiprogrammed load -- one
 * capacity-hungry core next to three light ones, like mcf beside mesa
 * and gzip in MIX3 -- and prints the per-d-group occupancy so you can
 * watch the hungry core's working set spill into its neighbours'
 * d-groups via demotion.
 */

#include <cstdio>

#include "common/rng.hh"
#include "mem/bus.hh"
#include "mem/memory.hh"
#include "nurapid/cmp_nurapid.hh"

using namespace cnsim;

namespace
{

void
printOccupancy(const CmpNurapid &l2, const char *when)
{
    std::printf("%-28s", when);
    for (DGroupId g = 0; g < 4; ++g)
        std::printf("  dg%c:%5u", 'a' + g, l2.dgroupOccupancy(g));
    std::printf("\n");
}

} // namespace

int
main()
{
    // The paper's full-size cache: four 2 MB d-groups, 16384 frames
    // each.
    NurapidParams p;
    MainMemory mem;
    SnoopBus bus;
    CmpNurapid l2(p, bus, mem);
    l2.setL1Hooks([](CoreId, Addr) {}, [](CoreId, Addr, bool) {});

    Rng rng(42);
    Tick t = 0;
    const unsigned frames = 16384;

    std::printf("Phase 1: every core touches a small working set "
                "(1/4 of its d-group)\n");
    for (CoreId c = 0; c < 4; ++c) {
        Addr base = 0x10000000ull * (c + 1);
        for (unsigned i = 0; i < frames / 4; ++i) {
            l2.access({c, base + static_cast<Addr>(i) * 128, MemOp::Load},
                      t);
            t += 10;
        }
    }
    printOccupancy(l2, "after phase 1:");

    std::printf("\nPhase 2: core 0 becomes capacity-hungry "
                "(2.5 d-groups worth of blocks)\n");
    for (unsigned i = 0; i < frames * 5 / 2; ++i) {
        l2.access({0, 0x10000000ull + static_cast<Addr>(i) * 128,
                   MemOp::Load},
                  t);
        t += 10;
    }
    printOccupancy(l2, "after phase 2:");
    std::printf("demotions: %llu, promotions: %llu\n",
                (unsigned long long)l2.demotions(),
                (unsigned long long)l2.promotions());

    std::printf("\nPhase 3: core 1 reclaims its own d-group by "
                "touching a hot set again\n");
    for (int round = 0; round < 3; ++round) {
        Addr base = 0x10000000ull * 2;
        for (unsigned i = 0; i < frames / 4; ++i) {
            l2.access({1, base + static_cast<Addr>(i) * 128, MemOp::Load},
                      t);
            t += 10;
        }
    }
    printOccupancy(l2, "after phase 3:");
    std::printf("promotions now: %llu (core 1 pulled demoted blocks "
                "back to d-group b)\n",
                (unsigned long long)l2.promotions());

    l2.checkInvariants();
    std::printf("\ninvariants OK: every forward/reverse pointer pair "
                "consistent.\n");
    return 0;
}
