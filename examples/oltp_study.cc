/**
 * @file
 * OLTP study: the paper's motivating scenario end to end. Runs the
 * OLTP workload model on all five L2 organizations and reports the
 * latency/capacity story behind Figure 10's best case (CMP-NuRAPID
 * +16% over uniform-shared on OLTP).
 *
 * Demonstrates configuring several System variants and comparing
 * RunResults, including the per-class miss breakdown that explains
 * *why* each organization performs the way it does.
 */

#include <cstdio>

#include "sim/runner.hh"

using namespace cnsim;

int
main()
{
    WorkloadSpec oltp = workloads::byName("oltp");
    RunConfig rc;
    rc.warmup_instructions = 4'000'000;
    rc.measure_instructions = 6'000'000;

    std::printf("OLTP on five L2 organizations (4 cores, 8 MB on-chip)\n");
    std::printf("%-10s %8s %8s %8s %8s %8s %8s %9s\n", "config", "IPC",
                "rel", "hit%", "ros%", "rws%", "cap%", "missRate");
    std::printf("-----------------------------------------------------------------------\n");

    double base_ipc = 0.0;
    for (L2Kind k : {L2Kind::Shared, L2Kind::Snuca, L2Kind::Private,
                     L2Kind::Nurapid, L2Kind::Ideal}) {
        RunResult r = Runner::run(Runner::paperConfig(k), oltp, rc);
        if (k == L2Kind::Shared)
            base_ipc = r.ipc;
        std::printf("%-10s %8.3f %8.3f %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f%%\n",
                    r.l2_kind.c_str(), r.ipc, r.ipc / base_ipc,
                    100 * r.frac_hit, 100 * r.frac_ros, 100 * r.frac_rws,
                    100 * r.frac_cap, 100 * r.miss_rate);
    }

    std::printf("\nReading the table:\n");
    std::printf(" - shared: one copy of everything (lowest miss rate) but "
                "59-cycle access.\n");
    std::printf(" - snuca: same misses, distance-dependent bank latency.\n");
    std::printf(" - private: 10-cycle access, but OLTP's read-write "
                "sharing turns into\n   coherence misses and replication "
                "wastes capacity.\n");
    std::printf(" - nurapid: private-style latency, shared-style "
                "capacity; ISC removes the\n   RWS misses that dominate "
                "OLTP (paper: +16%% over shared here).\n");
    std::printf(" - ideal: unbuildable upper bound (shared capacity at "
                "private latency).\n");
    return 0;
}
