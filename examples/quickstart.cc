/**
 * @file
 * Quickstart: build the paper's 4-core / 8 MB CMP with a CMP-NuRAPID
 * L2, run the OLTP workload model on it, and print the statistics.
 *
 * This is the smallest complete use of the cnsim public API:
 *   1. pick a system configuration (Runner::paperConfig),
 *   2. pick a workload (workloads::byName),
 *   3. run (Runner::run),
 *   4. read the RunResult.
 */

#include <cstdio>

#include "sim/runner.hh"

using namespace cnsim;

int
main()
{
    // 1. The paper's Section-4 platform with the CMP-NuRAPID L2.
    SystemConfig cfg = Runner::paperConfig(L2Kind::Nurapid);

    // 2. The OLTP (TPC-C-like) multithreaded workload model.
    WorkloadSpec oltp = workloads::byName("oltp");

    // 3. Warm up, then measure.
    RunConfig rc;
    rc.warmup_instructions = 4'000'000;
    rc.measure_instructions = 6'000'000;
    RunResult r = Runner::run(cfg, oltp, rc);

    // 4. Report.
    std::printf("workload            : %s\n", r.workload.c_str());
    std::printf("L2 organization     : %s\n", r.l2_kind.c_str());
    std::printf("instructions        : %llu\n",
                (unsigned long long)r.instructions);
    std::printf("cycles              : %llu\n",
                (unsigned long long)r.cycles);
    std::printf("aggregate IPC       : %.3f\n", r.ipc);
    for (std::size_t c = 0; c < r.core_ipc.size(); ++c)
        std::printf("  core %zu IPC        : %.3f\n", c, r.core_ipc[c]);
    std::printf("L2 accesses         : %llu\n",
                (unsigned long long)r.l2_accesses);
    std::printf("  hits              : %5.1f%%\n", 100 * r.frac_hit);
    std::printf("  ROS misses        : %5.1f%%\n", 100 * r.frac_ros);
    std::printf("  RWS misses        : %5.1f%%\n", 100 * r.frac_rws);
    std::printf("  capacity misses   : %5.1f%%\n", 100 * r.frac_cap);
    std::printf("closest-d-group hits: %5.1f%% of hits\n",
                100 * r.closest_hit_frac);
    return 0;
}
