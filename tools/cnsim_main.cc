/**
 * @file
 * cnsim command-line driver.
 *
 * Runs any workload from the paper's Tables 2/3 on any of the seven
 * L2 organizations and reports the RunResult, optionally with the
 * complete statistics dump. Examples:
 *
 *   cnsim --l2 nurapid --workload oltp
 *   cnsim --l2 all --workload mix3 --measure 20000000
 *   cnsim --l2 private --workload apache --stats
 *   cnsim --l2 all --workload all --jobs 8
 *   cnsim --list
 *
 * Grid sweeps (--l2 all / --workload all) fan the independent runs out
 * over --jobs worker threads (default: hardware concurrency). Results
 * are printed in grid order and are byte-identical for every --jobs
 * value; per-job progress and elapsed time go to stderr.
 *
 * --farm-jobs moves the fan-out from threads to worker *processes*
 * with a content-addressed result/checkpoint cache (src/farm/); the
 * printed table stays byte-identical to the in-process path. The same
 * binary is also the farm worker (`cnsim --worker`, spawned by the
 * coordinator) and the result server (`cnsim serve --socket <path>`).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <memory>

#include "common/logging.hh"
#include "core/core.hh"
#include "farm/cache.hh"
#include "farm/coordinator.hh"
#include "farm/serve.hh"
#include "farm/worker.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_runner.hh"
#include "sim/runner.hh"
#include "trace/replay.hh"
#include "trace/trace_file.hh"

using namespace cnsim;

namespace
{

const std::vector<std::pair<std::string, L2Kind>> kinds = {
    {"shared", L2Kind::Shared},   {"private", L2Kind::Private},
    {"snuca", L2Kind::Snuca},     {"ideal", L2Kind::Ideal},
    {"nurapid", L2Kind::Nurapid}, {"update", L2Kind::Update},
    {"dnuca", L2Kind::Dnuca},
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --l2 <kind>        shared|private|snuca|ideal|nurapid|update|"
        "dnuca|all (default nurapid)\n"
        "  --workload <name>  oltp|apache|specjbb|ocean|barnes|mix1..mix4"
        "|mt|mp|all (default oltp)\n"
        "  --cores <N>        core count, 1..64 (default 4; other "
        "counts scale\n"
        "                     capacity at 2 MB/core and re-derive "
        "latencies)\n"
        "  --interconnect <i> bus|mesh|ring (default bus; mesh/ring "
        "use a\n"
        "                     directory protocol over the NoC)\n"
        "  --warmup <N>       warm-up instructions per core\n"
        "  --measure <N>      measured instructions per core\n"
        "  --seed <N>         workload seed (default 1)\n"
        "  --jobs <N>         worker threads for grid sweeps (default: "
        "hardware\n"
        "                     concurrency; results identical for any N)\n"
        "  --farm-jobs <N>    run the sweep on N worker *processes* "
        "with a\n"
        "                     content-addressed result/checkpoint cache "
        "(0 =\n"
        "                     hardware concurrency; results identical "
        "to --jobs)\n"
        "  --cache-dir <dir>  farm cache directory (default "
        "$CNSIM_CACHE_DIR,\n"
        "                     else ~/.cache/cnsim; '' disables "
        "caching)\n"
        "  --sample-windows <K>  interval sampling: K detailed windows "
        "separated by\n"
        "                     decode-only fast-forward, functional "
        "(untimed) warm-up;\n"
        "                     IPC is reported as mean +/- Student-t 95%% "
        "CI over the\n"
        "                     windows\n"
        "  --sample-detail <N>   measured instructions per window "
        "(default\n"
        "                     measure / (K*16))\n"
        "  --sample-warmup <N>   functionally-warmed instructions before "
        "each\n"
        "                     window (default = sample-detail)\n"
        "  --ckpt-save <file> warm up, save the CNCKPT01 machine state, "
        "then measure\n"
        "                     (grid sweeps insert <l2>-<workload> before "
        "the\n"
        "                     extension); implies --replay-cache\n"
        "  --ckpt-load <file> resume from a saved checkpoint instead of "
        "warming up\n"
        "                     (config- and trace-strict); implies "
        "--replay-cache\n"
        "  --no-cr            disable controlled replication (nurapid)\n"
        "  --no-isc           disable in-situ communication (nurapid)\n"
        "  --promotion <p>    fastest|next-fastest|none (nurapid)\n"
        "  --tag-factor <N>   nurapid tag-capacity multiple (1/2/4)\n"
        "  --stats            dump the full statistics block per run\n"
        "  --stats-csv <file> write per-run statistics as CSV "
        "(l2,workload,name,value)\n"
        "  --trace-out <file> record the measurement epoch's events and "
        "export them\n"
        "                     here (grid sweeps insert <l2>-<workload> "
        "before the\n"
        "                     extension)\n"
        "  --trace-format <f> json (Chrome trace_event) | bin (compact, "
        "for cntrace)\n"
        "  --binlog-out <file> stream events + metrics to a CNBLG01 "
        "binary log\n"
        "                     (lock-free hot path; format offline with "
        "cntrace)\n"
        "  --metrics-interval <N>  snapshot the metrics registry every N "
        "ticks\n"
        "  --metrics-out <file>    write the metrics time series CSV "
        "here\n"
        "  --audit            run the online coherence-protocol auditor\n"
        "  --replay-cache     materialize each workload's stream once "
        "(canonical\n"
        "                     order) and replay it across every grid "
        "cell;\n"
        "                     multi-cell grids default to generating "
        "the same\n"
        "                     canonical stream live per cell (identical "
        "records,\n"
        "                     no decode cost) and materialize only when "
        "a\n"
        "                     positional cursor is needed (sampling, "
        "checkpoints,\n"
        "                     capture)\n"
        "  --no-replay-cache  regenerate the stream live per cell "
        "(timing-\n"
        "                     interleaved order)\n"
        "  --trace-capture <file>  save the replayed stream(s) as "
        "CNTRF001 (grids\n"
        "                     with several workloads insert the "
        "workload name\n"
        "                     before the extension); implies "
        "--replay-cache\n"
        "  --trace-replay <file>   drive every cell from a captured "
        "CNTRF001 trace\n"
        "                     (single workload name for labeling only)"
        "\n"
        "  --record <prefix>  record per-core traces to "
        "<prefix>.core<N>.trc (legacy\n"
        "                     CNSTRC01, timing-interleaved, serial)\n"
        "  --replay <prefix>  drive the cores from recorded legacy "
        "traces\n"
        "  --list             list workloads and organizations\n"
        "subcommands:\n"
        "  serve --socket <path> [--cache-dir <dir>]\n"
        "                     run the result server: framed cell "
        "requests over a\n"
        "                     Unix socket, cached results, in-flight "
        "dedup\n"
        "  --worker [--cache-dir <dir>]\n"
        "                     farm worker loop on stdin/stdout "
        "(spawned by the\n"
        "                     --farm-jobs coordinator; not for "
        "interactive use)\n",
        argv0);
}

/**
 * Insert @p tag before @p path's extension ("t.json" + "nurapid-oltp"
 * -> "t.nurapid-oltp.json") so grid sweeps write one file per run.
 */
std::string
tagPath(const std::string &path, const std::string &tag)
{
    auto dot = path.rfind('.');
    auto slash = path.rfind('/');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "." + tag;
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

void
writeTextFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << text;
}

std::vector<L2Kind>
parseKinds(const std::string &s)
{
    if (s == "all") {
        std::vector<L2Kind> all;
        for (const auto &kv : kinds)
            all.push_back(kv.second);
        return all;
    }
    for (const auto &kv : kinds) {
        if (kv.first == s)
            return {kv.second};
    }
    fatal("unknown L2 kind '%s'", s.c_str());
}

InterconnectKind
parseInterconnect(const std::string &s)
{
    if (s == "bus")
        return InterconnectKind::Bus;
    if (s == "mesh")
        return InterconnectKind::Mesh;
    if (s == "ring")
        return InterconnectKind::Ring;
    fatal("--interconnect must be bus, mesh or ring, got '%s'",
          s.c_str());
}

/**
 * Drive one run with trace recording or replay. Bypasses the Runner so
 * the cores can be fed RecordingSource/FileTraceSource wrappers; the
 * printed metrics follow the same warm-up/measure discipline.
 */
RunResult
runWithTraceIO(const SystemConfig &cfg, const WorkloadSpec &wl,
               const RunConfig &rc, const std::string &record_prefix,
               const std::string &replay_prefix)
{
    SystemConfig sc = cfg;
    if (!rc.trace_out.empty())
        sc.obs.trace = true;
    if (!rc.binlog_out.empty())
        sc.obs.binlog_out = rc.binlog_out;
    System system(sc);
    std::unique_ptr<SynthWorkload> synth;
    if (replay_prefix.empty())
        synth = std::make_unique<SynthWorkload>(wl.synth);

    std::vector<std::unique_ptr<TraceFileWriter>> writers;
    std::vector<std::unique_ptr<TraceSource>> sources;
    for (int c = 0; c < cfg.num_cores; ++c) {
        std::string path =
            (record_prefix.empty() ? replay_prefix : record_prefix) +
            ".core" + std::to_string(c) + ".trc";
        if (!replay_prefix.empty()) {
            sources.push_back(std::make_unique<FileTraceSource>(path));
        } else if (!record_prefix.empty()) {
            writers.push_back(std::make_unique<TraceFileWriter>(path));
            sources.push_back(std::make_unique<RecordingSource>(
                synth->source(c), *writers.back()));
        }
    }

    EventQueue eq;
    std::vector<std::unique_ptr<Core>> cores;
    for (int c = 0; c < cfg.num_cores; ++c) {
        cores.push_back(std::make_unique<Core>(
            c, system, *sources[c], cfg.core_non_mem_cpi));
        cores.back()->attachSink(system.traceSink());
        cores.back()->start(eq);
    }
    auto max_instr = [&]() {
        std::uint64_t m = 0;
        for (auto &core : cores)
            m = std::max(m, core->epochInstructions());
        return m;
    };
    while (max_instr() < rc.warmup_instructions) {
        eq.run(eq.now() + rc.quantum);
        system.obsTick(eq.now());
    }
    system.resetStats();
    Tick epoch = eq.now();
    for (auto &core : cores)
        core->markEpoch(epoch);
    while (max_instr() < rc.measure_instructions) {
        eq.run(eq.now() + rc.quantum);
        system.obsTick(eq.now());
    }
    system.checkInvariants();

    RunResult r;
    r.workload = wl.name;
    r.l2_kind = system.l2().kind();
    r.cycles = eq.now() - epoch;
    for (auto &core : cores)
        r.instructions += core->epochInstructions();
    r.ipc = r.cycles ? static_cast<double>(r.instructions) / r.cycles
                     : 0.0;
    r.frac_hit = system.l2().clsFraction(AccessClass::Hit);
    r.frac_ros = system.l2().clsFraction(AccessClass::ROSMiss);
    r.frac_rws = system.l2().clsFraction(AccessClass::RWSMiss);
    r.frac_cap = system.l2().clsFraction(AccessClass::CapacityMiss);

    if (rc.collect_stats_dump || rc.collect_stats_csv) {
        StatGroup g("system");
        system.regStats(g);
        for (auto &core : cores)
            core->regStats(g);
        if (rc.collect_stats_dump)
            r.stats_dump = g.dump();
        if (rc.collect_stats_csv)
            r.stats_csv = g.dumpCsv();
    }
    system.finishObs(eq.now());
    if (system.metrics())
        r.metrics_csv = system.metrics()->csv();
    if (obs::TraceSink *sink = system.traceSink()) {
        r.trace_events = sink->recordedEvents();
        r.trace_dropped = sink->dropped();
        if (!rc.trace_out.empty())
            sink->exportTo(rc.trace_out, rc.trace_format);
    }
    if (system.auditor())
        r.audited_transitions = system.auditor()->transitions();
    return r;
}

std::vector<std::string>
parseWorkloads(const std::string &s)
{
    if (s == "mt")
        return workloads::multithreadedNames();
    if (s == "mp")
        return workloads::multiprogrammedNames();
    if (s == "all") {
        auto v = workloads::multithreadedNames();
        for (const auto &m : workloads::multiprogrammedNames())
            v.push_back(m);
        return v;
    }
    workloads::byName(s);  // validates (fatal on unknown)
    return {s};
}

} // namespace

int
main(int argc, char **argv)
{
    // Subcommand dispatch before regular flag parsing: the worker and
    // serve modes are protocol loops, not sweep drivers.
    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
        std::string cache_dir;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--cache-dir") == 0 && i + 1 < argc)
                cache_dir = argv[++i];
            else
                fatal("--worker accepts only --cache-dir <dir>, "
                      "got '%s'", argv[i]);
        }
        return farm::workerMain(cache_dir);
    }
    if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
        std::string socket_path;
        std::string serve_cache = farm::Cache::defaultDir();
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc)
                socket_path = argv[++i];
            else if (std::strcmp(argv[i], "--cache-dir") == 0 &&
                     i + 1 < argc)
                serve_cache = argv[++i];
            else
                fatal("serve accepts --socket <path> and --cache-dir "
                      "<dir>, got '%s'", argv[i]);
        }
        if (socket_path.empty())
            fatal("serve needs --socket <path>");
        return farm::serveMain(socket_path, serve_cache);
    }

    std::string l2_arg = "nurapid";
    std::string wl_arg = "oltp";
    int cores = 4;
    InterconnectKind icn = InterconnectKind::Bus;
    RunConfig rc;
    rc.warmup_instructions = 6'000'000;
    rc.measure_instructions = 10'000'000;
    unsigned jobs = ParallelRunner::defaultWorkers();
    int farm_jobs = -1;  // -1 off, 0 hardware concurrency, N workers
    std::string cache_dir = farm::Cache::defaultDir();
    bool want_stats = false;
    bool no_cr = false;
    bool no_isc = false;
    std::string promotion = "fastest";
    unsigned tag_factor = 2;
    std::string record_prefix;
    std::string replay_prefix;
    std::string ckpt_save_path;
    std::string ckpt_load_path;
    std::string trace_capture_path;
    std::string trace_replay_path;
    int replay_cache = -1;  // -1 auto, 0 off, 1 on
    std::string stats_csv_path;
    std::string trace_out;
    std::string binlog_out;
    std::string metrics_out;
    obs::TraceFormat trace_format = obs::TraceFormat::ChromeJson;
    std::uint64_t metrics_interval = 0;
    bool audit = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--l2") {
            l2_arg = next();
        } else if (a == "--workload") {
            wl_arg = next();
        } else if (a == "--cores") {
            const char *v = next();
            char *end = nullptr;
            cores = static_cast<int>(std::strtol(v, &end, 10));
            if (end == v || *end != '\0' || cores < 1 || cores > 64)
                fatal("--cores needs an integer in 1..64, got '%s'", v);
        } else if (a == "--interconnect") {
            icn = parseInterconnect(next());
        } else if (a == "--warmup") {
            rc.warmup_instructions = std::strtoull(next(), nullptr, 10);
        } else if (a == "--measure") {
            rc.measure_instructions = std::strtoull(next(), nullptr, 10);
        } else if (a == "--seed") {
            rc.seed = std::strtoull(next(), nullptr, 10);
        } else if (a == "--jobs") {
            const char *v = next();
            char *end = nullptr;
            jobs = static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (end == v || *end != '\0' || jobs == 0)
                fatal("--jobs needs a positive integer, got '%s'", v);
        } else if (a == "--farm-jobs") {
            const char *v = next();
            char *end = nullptr;
            farm_jobs = static_cast<int>(std::strtol(v, &end, 10));
            if (end == v || *end != '\0' || farm_jobs < 0)
                fatal("--farm-jobs needs a non-negative integer "
                      "(0 = hardware concurrency), got '%s'", v);
        } else if (a == "--cache-dir") {
            cache_dir = next();
        } else if (a == "--stats") {
            want_stats = true;
        } else if (a == "--stats-csv") {
            stats_csv_path = next();
        } else if (a == "--trace-out") {
            trace_out = next();
        } else if (a == "--binlog-out") {
            binlog_out = next();
        } else if (a == "--trace-format") {
            std::string f = next();
            if (f == "json")
                trace_format = obs::TraceFormat::ChromeJson;
            else if (f == "bin")
                trace_format = obs::TraceFormat::Binary;
            else
                fatal("--trace-format must be json or bin, got '%s'",
                      f.c_str());
        } else if (a == "--metrics-interval") {
            metrics_interval = std::strtoull(next(), nullptr, 10);
        } else if (a == "--metrics-out") {
            metrics_out = next();
        } else if (a == "--audit") {
            audit = true;
        } else if (a == "--no-cr") {
            no_cr = true;
        } else if (a == "--no-isc") {
            no_isc = true;
        } else if (a == "--promotion") {
            promotion = next();
        } else if (a == "--tag-factor") {
            tag_factor =
                static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
        } else if (a == "--sample-windows") {
            const char *v = next();
            char *end = nullptr;
            rc.sample_windows =
                static_cast<unsigned>(std::strtoul(v, &end, 10));
            if (end == v || *end != '\0' || rc.sample_windows == 0)
                fatal("--sample-windows needs a positive integer, "
                      "got '%s'", v);
        } else if (a == "--sample-detail") {
            rc.sample_detail = std::strtoull(next(), nullptr, 10);
        } else if (a == "--sample-warmup") {
            rc.sample_warmup = std::strtoull(next(), nullptr, 10);
        } else if (a == "--ckpt-save") {
            ckpt_save_path = next();
        } else if (a == "--ckpt-load") {
            ckpt_load_path = next();
        } else if (a == "--record") {
            record_prefix = next();
        } else if (a == "--replay") {
            replay_prefix = next();
        } else if (a == "--trace-capture") {
            trace_capture_path = next();
        } else if (a == "--trace-replay") {
            trace_replay_path = next();
        } else if (a == "--replay-cache") {
            replay_cache = 1;
        } else if (a == "--no-replay-cache") {
            replay_cache = 0;
        } else if (a == "--list") {
            std::printf("workloads (Table 3): ");
            for (const auto &w : workloads::multithreadedNames())
                std::printf("%s ", w.c_str());
            std::printf("\nworkloads (Table 2): ");
            for (const auto &w : workloads::multiprogrammedNames())
                std::printf("%s ", w.c_str());
            std::printf("\nL2 organizations:    ");
            for (const auto &kv : kinds)
                std::printf("%s ", kv.first.c_str());
            std::printf("\n");
            return 0;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", a.c_str());
        }
    }

    rc.collect_stats_dump = want_stats;
    rc.collect_stats_csv = !stats_csv_path.empty();
    rc.trace_format = trace_format;
    // A metrics file without an explicit interval gets a usable default.
    if (!metrics_out.empty() && metrics_interval == 0)
        metrics_interval = 100'000;

    const bool trace_io = !record_prefix.empty() || !replay_prefix.empty();
    if (trace_io &&
        (!trace_capture_path.empty() || !trace_replay_path.empty() ||
         replay_cache == 1)) {
        fatal("--record/--replay (legacy per-core traces) cannot be "
              "combined with --trace-capture/--trace-replay/"
              "--replay-cache");
    }
    const bool ckpt =
        !ckpt_save_path.empty() || !ckpt_load_path.empty();
    if (ckpt && trace_io)
        fatal("--ckpt-save/--ckpt-load cannot be combined with the "
              "legacy --record/--replay path");
    if (ckpt && replay_cache == 0)
        fatal("checkpoints store a positional stream cursor and need "
              "the replay cache; drop --no-replay-cache");
    if (!ckpt_save_path.empty() && !ckpt_load_path.empty())
        fatal("--ckpt-save and --ckpt-load are mutually exclusive");
    if (!trace_capture_path.empty() && !trace_replay_path.empty())
        fatal("--trace-capture and --trace-replay are mutually "
              "exclusive");

    const bool farm_mode = farm_jobs >= 0;
    if (farm_mode) {
        if (trace_io)
            fatal("--farm-jobs cannot drive the legacy "
                  "--record/--replay path");
        if (!trace_capture_path.empty() || !trace_replay_path.empty())
            fatal("--farm-jobs cannot capture or replay CNTRF001 "
                  "traces; cells rebuild their canonical streams from "
                  "parameters");
        if (ckpt)
            fatal("--farm-jobs manages warmed state through its "
                  "checkpoint cache; drop --ckpt-save/--ckpt-load");
    }

    // Build the (L2 kind x workload) grid in print order.
    const std::vector<L2Kind> kind_list = parseKinds(l2_arg);
    const std::vector<std::string> wl_list = parseWorkloads(wl_arg);
    const bool multi = kind_list.size() * wl_list.size() > 1;

    // A captured trace replays one workload's stream; a grid over
    // several workloads has no single stream to replay.
    if (!trace_replay_path.empty() && wl_list.size() > 1)
        fatal("--trace-replay drives a single workload (got %zu)",
              wl_list.size());

    // Stream-sharing policy. Multi-cell grids default to the canonical
    // stream -- byte-identical records in every cell. Grids where at
    // least ParallelRunner::min_stream_sharers cells share a
    // workload's stream materialize it once (the generator amortizes
    // and cells read flat chunks); below that threshold the stream is
    // served by regeneration (canonical-live), which is cheaper than
    // materialize-then-read for a lone consumer. A materialized
    // RecordedTrace is also forced whenever something needs its
    // positional cursor: sampling hops, checkpoints, capture, or an
    // explicit --replay-cache. --no-replay-cache restores plain live
    // per-cell generation (timing-interleaved stream order).
    const bool auto_shared = replay_cache == -1 && multi && !trace_io &&
                             !ckpt && trace_capture_path.empty();
    const bool use_replay_cache =
        replay_cache == 1 || ckpt ||
        (!trace_capture_path.empty() && replay_cache != 0) ||
        (auto_shared &&
         (rc.sample_windows > 0 ||
          kind_list.size() >= ParallelRunner::min_stream_sharers));
    const bool use_canonical = auto_shared && rc.sample_windows == 0 &&
                               trace_replay_path.empty() &&
                               !use_replay_cache;
    if (!trace_capture_path.empty() && !use_replay_cache)
        fatal("--trace-capture needs the replay cache; drop "
              "--no-replay-cache");

    // Per-workload shared traces for this grid (capture needs the
    // handles afterwards to save the streams).
    std::shared_ptr<RecordedTrace> frozen;
    if (!trace_replay_path.empty()) {
        frozen = RecordedTrace::fromFile(trace_replay_path);
        inform("replaying '%s': %d cores, %llu records/core published",
               trace_replay_path.c_str(), frozen->cores(),
               static_cast<unsigned long long>(
                   frozen->recordsPublished(0)));
    }
    std::vector<std::pair<std::string, std::shared_ptr<RecordedTrace>>>
        cached_traces;
    auto trace_for = [&](const std::string &w)
        -> std::shared_ptr<RecordedTrace> {
        if (frozen)
            return frozen;
        if (!use_replay_cache)
            return nullptr;
        for (const auto &ct : cached_traces)
            if (ct.first == w)
                return ct.second;
        cached_traces.emplace_back(
            w, TraceCache::global().acquire(Runner::effectiveSynthParams(
                   workloads::byName(w, cores), rc)));
        return cached_traces.back().second;
    };

    ParallelRunner pool(jobs);
    std::vector<farm::CellSpec> farm_cells;
    std::vector<RunResult> results;
    for (L2Kind kind : kind_list) {
        SystemConfig cfg = Runner::paperConfig(kind, cores, icn);
        cfg.nurapid.enable_cr = !no_cr;
        cfg.nurapid.enable_isc = !no_isc;
        cfg.nurapid.tag_factor = tag_factor;
        if (promotion == "next-fastest")
            cfg.nurapid.promotion = PromotionPolicy::NextFastest;
        else if (promotion == "none")
            cfg.nurapid.promotion = PromotionPolicy::None;
        else if (promotion != "fastest")
            fatal("unknown promotion policy '%s'", promotion.c_str());
        cfg.obs.audit = audit;
        cfg.obs.metrics_interval = metrics_interval;

        for (const auto &w : wl_list) {
            RunConfig run = rc;
            // Farm cells rebuild their streams worker-side from the
            // spec; materializing here would be pure waste.
            run.replay = farm_mode ? nullptr : trace_for(w);
            if (run.replay && run.replay->cores() != cfg.num_cores) {
                fatal("trace '%s' has %d cores but the system has %d",
                      trace_replay_path.c_str(), run.replay->cores(),
                      cfg.num_cores);
            }
            run.canonical_live = use_canonical && !run.replay;
            // Grid sweeps write one trace per run, tagged by cell.
            if (!trace_out.empty())
                run.trace_out =
                    multi ? tagPath(trace_out, std::string(toString(kind)) +
                                                   "-" + w)
                          : trace_out;
            if (!binlog_out.empty())
                run.binlog_out =
                    multi ? tagPath(binlog_out,
                                    std::string(toString(kind)) + "-" + w)
                          : binlog_out;
            // Checkpoints are config-strict, so grid sweeps keep one
            // file per cell.
            if (!ckpt_save_path.empty())
                run.ckpt_save =
                    multi ? tagPath(ckpt_save_path,
                                    std::string(toString(kind)) + "-" + w)
                          : ckpt_save_path;
            if (!ckpt_load_path.empty())
                run.ckpt_load =
                    multi ? tagPath(ckpt_load_path,
                                    std::string(toString(kind)) + "-" + w)
                          : ckpt_load_path;
            if (trace_io) {
                // Trace record/replay shares files between runs, so it
                // stays serial and bypasses the pool.
                results.push_back(runWithTraceIO(
                    cfg, workloads::byName(w, cores), run, record_prefix,
                    replay_prefix));
            } else if (farm_mode) {
                farm::CellSpec spec;
                spec.l2_kind = static_cast<std::uint32_t>(kind);
                spec.cores = static_cast<std::uint32_t>(cores);
                spec.interconnect = static_cast<std::uint32_t>(icn);
                spec.enable_cr = cfg.nurapid.enable_cr ? 1 : 0;
                spec.enable_isc = cfg.nurapid.enable_isc ? 1 : 0;
                spec.promotion =
                    static_cast<std::uint32_t>(cfg.nurapid.promotion);
                spec.tag_factor = tag_factor;
                spec.audit = audit ? 1 : 0;
                spec.metrics_interval = metrics_interval;
                spec.trace_out = run.trace_out;
                spec.trace_format =
                    static_cast<std::uint8_t>(trace_format);
                spec.binlog_out = run.binlog_out;
                spec.workload = w;
                spec.warmup = rc.warmup_instructions;
                spec.measure = rc.measure_instructions;
                spec.quantum = rc.quantum;
                spec.seed = rc.seed;
                spec.sample_windows = rc.sample_windows;
                spec.sample_detail = rc.sample_detail;
                spec.sample_warmup = rc.sample_warmup;
                spec.collect_stats_dump = rc.collect_stats_dump ? 1 : 0;
                spec.collect_stats_csv = rc.collect_stats_csv ? 1 : 0;
                // Mirror the in-process stream decision so farm and
                // in-process sweeps stay byte-identical.
                spec.trace_mode = static_cast<std::uint8_t>(
                    use_replay_cache ? farm::CellTraceMode::Materialized
                    : use_canonical  ? farm::CellTraceMode::Canonical
                                     : farm::CellTraceMode::Live);
                farm_cells.push_back(spec);
            } else {
                pool.submit(cfg, workloads::byName(w, cores), run);
            }
        }
    }

    if (farm_mode) {
        farm::FarmOptions fo;
        fo.workers = static_cast<unsigned>(farm_jobs);
        fo.cache_dir = cache_dir;
        results = farm::runFarm(farm_cells, fo);
    } else if (!trace_io) {
        pool.onProgress([](const JobReport &rep) {
            inform("[%zu/%zu] %s/%s: %.1fs", rep.completed, rep.total,
                   rep.result->l2_kind.c_str(),
                   rep.result->workload.c_str(), rep.seconds);
        });
        results = pool.run();
    }

    const bool any_sampled = rc.sample_windows > 0;
    std::printf("%-8s %-10s %8s %s%8s %8s %8s %8s %9s\n", "l2",
                "workload", "IPC", any_sampled ? "  +/-ci95 " : "",
                "hit%", "ros%", "rws%", "cap%", "cycles");
    for (const RunResult &r : results) {
        std::printf("%-8s %-10s %8.3f ", r.l2_kind.c_str(),
                    r.workload.c_str(), r.ipc);
        if (any_sampled)
            std::printf("+/-%6.3f ", r.ipc_ci95);
        std::printf("%7.1f%% %7.1f%% %7.1f%% %7.1f%% %9llu\n",
                    100 * r.frac_hit, 100 * r.frac_ros,
                    100 * r.frac_rws, 100 * r.frac_cap,
                    static_cast<unsigned long long>(r.cycles));
        if (want_stats)
            std::printf("%s\n", r.stats_dump.c_str());
        if (audit || !trace_out.empty() || !binlog_out.empty()) {
            inform("%s/%s: %llu trace events, %llu audited transitions",
                   r.l2_kind.c_str(), r.workload.c_str(),
                   static_cast<unsigned long long>(r.trace_events),
                   static_cast<unsigned long long>(
                       r.audited_transitions));
            if (r.trace_dropped)
                warn("%s/%s: incomplete trace capture -- %llu events "
                     "dropped past the max_events cap",
                     r.l2_kind.c_str(), r.workload.c_str(),
                     static_cast<unsigned long long>(r.trace_dropped));
        }
    }

    if (!stats_csv_path.empty()) {
        // Merge the per-run CSVs into one file keyed by grid cell.
        std::string csv = "l2,workload,name,value\n";
        for (const RunResult &r : results) {
            std::size_t pos = r.stats_csv.find('\n');  // skip header
            pos = pos == std::string::npos ? r.stats_csv.size() : pos + 1;
            while (pos < r.stats_csv.size()) {
                std::size_t end = r.stats_csv.find('\n', pos);
                if (end == std::string::npos)
                    end = r.stats_csv.size();
                csv += r.l2_kind + "," + r.workload + "," +
                       r.stats_csv.substr(pos, end - pos) + "\n";
                pos = end + 1;
            }
        }
        writeTextFile(stats_csv_path, csv);
    }
    if (!metrics_out.empty()) {
        for (const RunResult &r : results)
            writeTextFile(multi ? tagPath(metrics_out,
                                          r.l2_kind + "-" + r.workload)
                                : metrics_out,
                          r.metrics_csv);
    }
    if (!trace_capture_path.empty()) {
        // Save exactly what the grid consumed: the published prefix of
        // each workload's canonical stream.
        for (const auto &ct : cached_traces) {
            std::string path = wl_list.size() > 1
                                   ? tagPath(trace_capture_path, ct.first)
                                   : trace_capture_path;
            ct.second->saveTrf(path);
            inform("captured %s: %llu records/core, %.1f MB resident "
                   "(packed on disk by the CNTRF001 codec)",
                   path.c_str(),
                   static_cast<unsigned long long>(
                       ct.second->recordsPublished(0)),
                   static_cast<double>(ct.second->bytesPublished()) /
                       (1024.0 * 1024.0));
        }
    }
    return 0;
}
