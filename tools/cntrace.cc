/**
 * @file
 * cntrace: inspector for cnsim binary event traces.
 *
 * Reads a trace written with `cnsim --trace-out t.bin --trace-format
 * bin` and either summarizes it, dumps (filtered) events as text, or
 * converts it to Chrome trace_event JSON:
 *
 *   cntrace summary t.bin
 *   cntrace dump t.bin --kind transition --core 2 --limit 50
 *   cntrace dump t.bin --addr 0x1f40 --component l2.nurapid
 *   cntrace json t.bin out.json
 *
 * Filters intersect; --component matches any track whose registered
 * path contains the given substring.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/event.hh"
#include "obs/trace_sink.hh"

using namespace cnsim;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> <trace.bin> [options]\n"
        "commands:\n"
        "  summary <trace.bin>             per-kind/component/cause "
        "breakdown\n"
        "  dump <trace.bin> [filters]      print events, one per line\n"
        "  json <trace.bin> <out.json>     convert to Chrome "
        "trace_event JSON\n"
        "dump filters:\n"
        "  --kind <k>        busTx|transition|dgroup|l1BackInval|"
        "resource|coreStall\n"
        "  --core <N>        events initiated by/affecting core N\n"
        "  --addr <A>        events for block address A (hex ok)\n"
        "  --component <s>   track path contains substring s\n"
        "  --limit <N>       stop after N matching events\n",
        argv0);
}

bool
parseKind(const std::string &s, obs::EventKind &out)
{
    for (int k = 0; k < obs::num_event_kinds; ++k) {
        auto kind = static_cast<obs::EventKind>(k);
        if (s == obs::toString(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        usage(argv[0]);
        return 0;
    }
    if (argc < 3) {
        usage(argv[0]);
        return 2;
    }

    const std::string cmd = argv[1];
    const std::string path = argv[2];

    std::vector<obs::TraceEvent> events;
    std::vector<std::string> components;
    std::string error;
    if (!obs::TraceSink::readBinary(path, events, components, &error))
        fatal("%s: %s", path.c_str(), error.c_str());

    if (cmd == "summary") {
        std::printf("%s", obs::summarize(events, components).c_str());
        return 0;
    }

    if (cmd == "json") {
        if (argc < 4)
            fatal("json needs an output path");
        obs::writeChromeJson(argv[3], events, components);
        inform("%zu events -> %s", events.size(), argv[3]);
        return 0;
    }

    if (cmd != "dump") {
        usage(argv[0]);
        fatal("unknown command '%s'", cmd.c_str());
    }

    bool have_kind = false;
    obs::EventKind kind = obs::EventKind::BusTx;
    int core = -1;
    bool have_addr = false;
    Addr addr = 0;
    std::string comp_substr;
    std::uint64_t limit = ~std::uint64_t{0};

    for (int i = 3; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--kind") {
            if (!parseKind(next(), kind))
                fatal("unknown event kind '%s'", argv[i]);
            have_kind = true;
        } else if (a == "--core") {
            core = static_cast<int>(std::strtol(next(), nullptr, 10));
        } else if (a == "--addr") {
            addr = std::strtoull(next(), nullptr, 0);
            have_addr = true;
        } else if (a == "--component") {
            comp_substr = next();
        } else if (a == "--limit") {
            limit = std::strtoull(next(), nullptr, 10);
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", a.c_str());
        }
    }

    std::uint64_t shown = 0;
    for (const obs::TraceEvent &ev : events) {
        if (shown >= limit)
            break;
        if (have_kind && ev.kind != kind)
            continue;
        if (core >= 0 && ev.core != core)
            continue;
        if (have_addr && ev.addr != addr)
            continue;
        if (!comp_substr.empty()) {
            if (ev.component < 0 ||
                ev.component >= static_cast<int>(components.size()))
                continue;
            if (components[ev.component].find(comp_substr) ==
                std::string::npos)
                continue;
        }
        std::printf("%s\n", obs::formatEvent(ev, components).c_str());
        ++shown;
    }
    std::fprintf(stderr, "%llu of %zu events shown\n",
                 static_cast<unsigned long long>(shown), events.size());
    return 0;
}
