/**
 * @file
 * cntrace: inspector for cnsim binary event traces.
 *
 * Reads a trace written with `cnsim --trace-out t.bin --trace-format
 * bin` and either summarizes it, dumps (filtered) events as text, or
 * converts it to Chrome trace_event JSON:
 *
 *   cntrace summary t.bin
 *   cntrace dump t.bin --kind transition --core 2 --limit 50
 *   cntrace dump t.bin --addr 0x1f40 --component l2.nurapid
 *   cntrace json t.bin out.json
 *
 * Filters intersect; --component matches any track whose registered
 * path contains the given substring.
 *
 * Packed reference traces (CNTRF001, from `cnsim --trace-capture`)
 * are detected by magic and get their own summary/dump:
 *
 *   cntrace summary oltp.trf
 *   cntrace dump oltp.trf --core 1 --limit 20
 *
 * Binary logs (CNBLG001, from `cnsim --binlog-out run.blg`) are also
 * detected by magic: summary/dump/json reconstruct the event stream
 * offline from the embedded message registry, and `csv` renders the
 * streamed metrics snapshots as a time-series CSV:
 *
 *   cntrace summary run.blg
 *   cntrace dump run.blg --kind coreStall --limit 20
 *   cntrace json run.blg out.json
 *   cntrace csv run.blg [out.csv]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "mem/packet.hh"
#include "obs/binlog.hh"
#include "obs/event.hh"
#include "obs/trace_sink.hh"
#include "trace/replay.hh"
#include "trace/trace_file.hh"

using namespace cnsim;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> <trace.bin> [options]\n"
        "commands:\n"
        "  summary <trace.bin>             per-kind/component/cause "
        "breakdown\n"
        "  dump <trace.bin> [filters]      print events, one per line\n"
        "  json <trace.bin> <out.json>     convert to Chrome "
        "trace_event JSON\n"
        "  csv <run.blg> [out.csv]         metrics time-series from a "
        "CNBLG01 binlog\n"
        "dump filters:\n"
        "  --kind <k>        busTx|transition|dgroup|l1BackInval|"
        "resource|coreStall\n"
        "  --core <N>        events initiated by/affecting core N\n"
        "  --addr <A>        events for block address A (hex ok)\n"
        "  --component <s>   track path contains substring s\n"
        "  --limit <N>       stop after N matching events\n",
        argv0);
}

/** True when @p path starts with the 8-byte @p magic. */
bool
hasMagic(const std::string &path, const char *magic)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        return false;
    char m[8];
    bool ok = std::fread(m, 1, 8, fp) == 8 &&
              std::memcmp(m, magic, 8) == 0;
    std::fclose(fp);
    return ok;
}

/** True when @p path starts with the CNTRF001 packed-trace magic. */
bool
isPackedTrace(const std::string &path)
{
    return hasMagic(path, "CNTRF001");
}

/** True when @p path starts with the CNBLG001 binlog magic. */
bool
isBinlog(const std::string &path)
{
    return hasMagic(path, "CNBLG001");
}

void
packedSummary(const std::string &path)
{
    PackedTrace t = readTrf(path);
    std::printf("CNTRF001 packed reference trace: %s\n", path.c_str());
    std::printf("cores: %zu  params-hash: %016llx  seed: %llu\n",
                t.cores.size(),
                static_cast<unsigned long long>(t.params_hash),
                static_cast<unsigned long long>(t.seed));
    std::printf("%-5s %12s %12s %9s %10s %8s %8s\n", "core", "records",
                "bytes", "B/record", "mean gap", "load%", "store%");
    for (std::size_t c = 0; c < t.cores.size(); ++c) {
        const PackedCoreTrace &ct = t.cores[c];
        PackedStreamReader reader(ct.bytes.data(), ct.bytes.size());
        TraceRecord rec;
        std::uint64_t loads = 0, stores = 0, gap_sum = 0;
        while (reader.next(rec)) {
            gap_sum += rec.gap;
            if (rec.op == MemOp::Store)
                ++stores;
            else
                ++loads;
        }
        if (reader.error() || reader.decoded() != ct.n_records)
            fatal("corrupt packed stream for core %zu (%llu of %llu "
                  "records decode)",
                  c, static_cast<unsigned long long>(reader.decoded()),
                  static_cast<unsigned long long>(ct.n_records));
        double n = static_cast<double>(ct.n_records);
        std::printf("%-5zu %12llu %12zu %9.2f %10.1f %7.1f%% %7.1f%%\n",
                    c, static_cast<unsigned long long>(ct.n_records),
                    ct.bytes.size(),
                    static_cast<double>(ct.bytes.size()) / n,
                    static_cast<double>(gap_sum) / n, 100.0 * loads / n,
                    100.0 * stores / n);
    }
}

void
packedDump(const std::string &path, int core, std::uint64_t limit)
{
    PackedTrace t = readTrf(path);
    for (std::size_t c = 0; c < t.cores.size(); ++c) {
        if (core >= 0 && static_cast<std::size_t>(core) != c)
            continue;
        const PackedCoreTrace &ct = t.cores[c];
        PackedStreamReader reader(ct.bytes.data(), ct.bytes.size());
        TraceRecord rec;
        std::uint64_t shown = 0;
        while (shown < limit && reader.next(rec)) {
            std::printf("core%zu #%llu gap=%u %s iaddr=0x%llx "
                        "addr=0x%llx\n",
                        c,
                        static_cast<unsigned long long>(reader.decoded() -
                                                        1),
                        rec.gap,
                        rec.op == MemOp::Store   ? "st"
                        : rec.op == MemOp::Ifetch ? "if"
                                                  : "ld",
                        static_cast<unsigned long long>(rec.iaddr),
                        static_cast<unsigned long long>(rec.addr));
            ++shown;
        }
        if (reader.error())
            fatal("corrupt packed stream for core %zu", c);
    }
}

bool
parseKind(const std::string &s, obs::EventKind &out)
{
    for (int k = 0; k < obs::num_event_kinds; ++k) {
        auto kind = static_cast<obs::EventKind>(k);
        if (s == obs::toString(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0)) {
        usage(argv[0]);
        return 0;
    }
    if (argc < 3) {
        usage(argv[0]);
        return 2;
    }

    const std::string cmd = argv[1];
    const std::string path = argv[2];

    if (isPackedTrace(path)) {
        if (cmd == "summary") {
            packedSummary(path);
            return 0;
        }
        if (cmd == "dump") {
            int trf_core = -1;
            std::uint64_t trf_limit = ~std::uint64_t{0};
            for (int i = 3; i < argc; ++i) {
                std::string a = argv[i];
                auto next = [&]() -> const char * {
                    if (i + 1 >= argc)
                        fatal("missing value for %s", a.c_str());
                    return argv[++i];
                };
                if (a == "--core") {
                    trf_core = static_cast<int>(
                        std::strtol(next(), nullptr, 10));
                } else if (a == "--limit") {
                    trf_limit = std::strtoull(next(), nullptr, 10);
                } else {
                    fatal("packed-trace dump supports --core/--limit, "
                          "not '%s'",
                          a.c_str());
                }
            }
            packedDump(path, trf_core, trf_limit);
            return 0;
        }
        fatal("command '%s' does not apply to CNTRF001 packed traces "
              "(use summary or dump)",
              cmd.c_str());
    }

    std::vector<obs::TraceEvent> events;
    std::vector<std::string> components;
    std::string error;
    std::uint64_t dropped = 0;
    bool binlog = isBinlog(path);
    if (binlog) {
        obs::BinlogData data;
        if (!obs::readBinlog(path, data, &error))
            fatal("%s: %s", path.c_str(), error.c_str());
        if (cmd == "csv") {
            std::string csv = obs::binlogMetricsCsv(data);
            if (argc >= 4) {
                std::FILE *out = std::fopen(argv[3], "wb");
                if (!out)
                    fatal("cannot open '%s' for writing", argv[3]);
                std::fwrite(csv.data(), 1, csv.size(), out);
                std::fclose(out);
                inform("%zu metric columns -> %s", data.metrics.size(),
                       argv[3]);
            } else {
                std::printf("%s", csv.c_str());
            }
            return 0;
        }
        events = obs::binlogEvents(data);
        components = data.components;
        dropped = data.dropped;
    } else {
        if (!obs::TraceSink::readBinary(path, events, components, &error,
                                        &dropped))
            fatal("%s: %s", path.c_str(), error.c_str());
    }
    if (dropped)
        warn("%s: incomplete capture -- %llu events dropped past the "
             "max_events cap",
             path.c_str(), static_cast<unsigned long long>(dropped));

    if (cmd == "csv")
        fatal("csv applies to CNBLG001 binlogs, not '%s'", path.c_str());

    if (cmd == "summary") {
        std::printf("%s",
                    obs::summarize(events, components, dropped).c_str());
        return 0;
    }

    if (cmd == "json") {
        if (argc < 4)
            fatal("json needs an output path");
        obs::writeChromeJson(argv[3], events, components, dropped);
        inform("%zu events -> %s", events.size(), argv[3]);
        return 0;
    }

    if (cmd != "dump") {
        usage(argv[0]);
        fatal("unknown command '%s'", cmd.c_str());
    }

    bool have_kind = false;
    obs::EventKind kind = obs::EventKind::BusTx;
    int core = -1;
    bool have_addr = false;
    Addr addr = 0;
    std::string comp_substr;
    std::uint64_t limit = ~std::uint64_t{0};

    for (int i = 3; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--kind") {
            if (!parseKind(next(), kind))
                fatal("unknown event kind '%s'", argv[i]);
            have_kind = true;
        } else if (a == "--core") {
            core = static_cast<int>(std::strtol(next(), nullptr, 10));
        } else if (a == "--addr") {
            addr = std::strtoull(next(), nullptr, 0);
            have_addr = true;
        } else if (a == "--component") {
            comp_substr = next();
        } else if (a == "--limit") {
            limit = std::strtoull(next(), nullptr, 10);
        } else {
            usage(argv[0]);
            fatal("unknown option '%s'", a.c_str());
        }
    }

    std::uint64_t shown = 0;
    for (const obs::TraceEvent &ev : events) {
        if (shown >= limit)
            break;
        if (have_kind && ev.kind != kind)
            continue;
        if (core >= 0 && ev.core != core)
            continue;
        if (have_addr && ev.addr != addr)
            continue;
        if (!comp_substr.empty()) {
            if (ev.component < 0 ||
                ev.component >= static_cast<int>(components.size()))
                continue;
            if (components[ev.component].find(comp_substr) ==
                std::string::npos)
                continue;
        }
        std::printf("%s\n", obs::formatEvent(ev, components).c_str());
        ++shown;
    }
    std::fprintf(stderr, "%llu of %zu events shown\n",
                 static_cast<unsigned long long>(shown), events.size());
    return 0;
}
