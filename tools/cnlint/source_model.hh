/**
 * @file
 * cnlint's view of one translation unit: raw text, a comment- and
 * string-blanked "code" view at identical offsets, a coarse token
 * stream annotated with lexical scope, the include list, and the
 * parsed cnlint directives (allow-suppressions and scope pragmas).
 *
 * The blanking pass is what keeps the token rules honest: banned
 * identifiers inside comments, doc examples, or string literals (this
 * very tool is full of them) never reach the rules.
 *
 * Preprocessor directives are collected once at load into a cached
 * list of logical lines (continuations joined); the header rules and
 * the symbol index consume the cache instead of re-scanning the text
 * per rule, which is what keeps whole-tree runs fast.
 */

#ifndef CNSIM_TOOLS_CNLINT_SOURCE_MODEL_HH
#define CNSIM_TOOLS_CNLINT_SOURCE_MODEL_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace cnlint
{

/** Coarse token classification; enough for every cnlint rule. */
enum class TokKind
{
    Ident,  //!< identifier or keyword
    Number, //!< numeric literal
    Punct,  //!< one punctuation character
};

/** Innermost lexical scope a token sits in. */
enum class ScopeKind
{
    File,  //!< outside any brace (includes namespace bodies)
    Class, //!< directly inside a class/struct/union body
    Enum,  //!< directly inside an enum body
    Block, //!< any other brace context (function body, initializer)
};

/** One token of the blanked code view. */
struct Token
{
    TokKind kind;
    std::string text; //!< single character for Punct
    int line;         //!< 1-based
    int col;          //!< 1-based column of the first character
    ScopeKind scope;  //!< innermost enclosing scope
};

/** A parsed allow directive (suppression syntax: see cnlint.hh). */
struct Allow
{
    int line;         //!< line the directive appears on
    bool next_line;   //!< directive sits on a comment-only line
    std::string rule;
    std::string reason;
    bool malformed;   //!< bad syntax / unknown rule / empty reason
    std::string error;
};

/** One preprocessor logical line (continuations joined with spaces). */
struct Directive
{
    int line;         //!< 1-based line the '#' sits on
    std::string text; //!< blanked view, from '#' to end of logical line
};

/** One #include, with the target read from the raw text. */
struct Include
{
    int line;           //!< 1-based
    int col;            //!< 1-based column of the opening '<' or '"'
    std::string target; //!< path between the delimiters
    bool angled;        //!< <system> rather than "project"
};

/** One pre-processed source file. */
struct SourceFile
{
    std::string path;
    std::string raw;  //!< file contents as read
    std::string code; //!< comments and literals blanked with spaces
    std::vector<Token> tokens;
    std::vector<Allow> allows;
    std::vector<Directive> directives; //!< cached once per file
    std::vector<Include> includes;
    bool header = false;    //!< .hh/.h
    bool sim_scope = false; //!< under src/, or `cnlint: scope(sim)`

    /**
     * Architectural layer this file belongs to: the directory under
     * src/ ("l2", "obs", ...), or the value of a `cnlint: layer(x)`
     * pragma. Empty for files outside the layered tree.
     */
    std::string layer;

    /** rule ID -> lines on which it is suppressed. */
    std::map<std::string, std::set<int>> suppressed;

    /**
     * Load @p path and run every preprocessing pass.
     * @return false if the file cannot be read.
     */
    bool load(const std::string &path);

    /** @return true if findings of @p rule are suppressed at @p line. */
    bool isSuppressed(const std::string &rule, int line) const;

    /** @return 1-based line containing byte offset @p off. */
    int lineOf(std::size_t off) const;

    /** @return 1-based column of byte offset @p off within its line. */
    int colOf(std::size_t off) const;

    /** @return true if the code view of @p line holds no code tokens
     *  (the line is blank or comment-only). */
    bool lineIsCodeFree(int line) const;

  private:
    std::vector<std::size_t> line_starts;

    void blankCommentsAndStrings();
    void tokenize();
    void assignScopes();
    void collectDirectives();
    void parseDirectives();
};

} // namespace cnlint

#endif // CNSIM_TOOLS_CNLINT_SOURCE_MODEL_HH
