/**
 * @file
 * SARIF 2.1.0 rendering for cnlint findings, so CI can upload results
 * to code-scanning UIs (GitHub annotates the PR diff from these).
 * Hand-rolled serialization: the document shape is small and fixed,
 * and cnlint deliberately has no dependencies.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cnlint/cnlint.hh"

namespace cnlint
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
renderSarif(const std::vector<Finding> &findings)
{
    std::string out;
    out += "{\n";
    out += "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    out += "  \"version\": \"2.1.0\",\n";
    out += "  \"runs\": [\n    {\n";
    out += "      \"tool\": {\n        \"driver\": {\n";
    out += "          \"name\": \"cnlint\",\n";
    out += "          \"rules\": [\n";
    const auto &catalog = ruleCatalog();
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        out += "            {\"id\": \"" + jsonEscape(catalog[i].id) +
               "\", \"shortDescription\": {\"text\": \"" +
               jsonEscape(catalog[i].summary) + "\"}}";
        out += i + 1 < catalog.size() ? ",\n" : "\n";
    }
    out += "          ]\n        }\n      },\n";
    out += "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "        {\"ruleId\": \"" + jsonEscape(f.rule) +
               "\", \"level\": \"error\", \"message\": {\"text\": \"" +
               jsonEscape(f.message) + "\"}, \"locations\": [{"
               "\"physicalLocation\": {\"artifactLocation\": {\"uri\": "
               "\"" + jsonEscape(f.file) + "\"}, \"region\": "
               "{\"startLine\": " + std::to_string(f.line) +
               ", \"startColumn\": " +
               std::to_string(f.col > 0 ? f.col : 1) + "}}}]}";
        out += i + 1 < findings.size() ? ",\n" : "\n";
    }
    out += "      ]\n    }\n  ]\n}\n";
    return out;
}

} // namespace cnlint
