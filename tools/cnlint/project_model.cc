#include "cnlint/project_model.hh"

#include <algorithm>
#include <cctype>

namespace cnlint
{

namespace
{

using Tokens = std::vector<Token>;

bool
isPunct(const Token &t, const char *p)
{
    return t.kind == TokKind::Punct && t.text == p;
}

bool
isIdent(const Token &t, const char *name)
{
    return t.kind == TokKind::Ident && t.text == name;
}

std::size_t
matchForward(const Tokens &ts, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (std::size_t k = i; k < ts.size(); ++k) {
        if (isPunct(ts[k], open))
            ++depth;
        else if (isPunct(ts[k], close) && --depth == 0)
            return k;
    }
    return ts.size();
}

bool
isAnnotationIdent(const std::string &t)
{
    return t == "CNSIM_GUARDED_BY" || t == "CNSIM_PT_GUARDED_BY" ||
           t == "CNSIM_SYNC_NOTE";
}

bool
isClassKeyword(const std::string &t)
{
    return t == "class" || t == "struct" || t == "union";
}

/**
 * Parse one member statement (token indices into @p ts, nested brace
 * groups already excluded) into a MemberDecl. @p brace_marker is the
 * position within @p stmt where a brace group was skipped, or -1.
 * @return false for statements that declare no member (nested types,
 * using-declarations, access labels, ...).
 */
bool
parseMemberStatement(const Tokens &ts, std::vector<std::size_t> &stmt,
                     long brace_marker, MemberDecl &m)
{
    // Strip access-specifier labels.
    while (stmt.size() >= 2 && ts[stmt[0]].kind == TokKind::Ident &&
           (ts[stmt[0]].text == "public" || ts[stmt[0]].text == "private" ||
            ts[stmt[0]].text == "protected") &&
           isPunct(ts[stmt[1]], ":")) {
        stmt.erase(stmt.begin(), stmt.begin() + 2);
        if (brace_marker >= 0)
            brace_marker -= 2;
    }
    if (stmt.empty())
        return false;
    const Token &first = ts[stmt[0]];
    if (first.kind == TokKind::Ident &&
        (first.text == "using" || first.text == "typedef" ||
         first.text == "friend" || first.text == "template" ||
         first.text == "static_assert" || first.text == "enum"))
        return false;
    for (std::size_t s : stmt) {
        if (ts[s].kind == TokKind::Ident &&
            (isClassKeyword(ts[s].text) || ts[s].text == "operator"))
            return false; // nested type or operator overload
    }

    // Locate the first top-level annotation macro, '(', '=' and '['
    // (template angle brackets don't nest parens in member decls often
    // enough to matter, but track them anyway).
    std::size_t n = stmt.size();
    std::size_t annot = n, paren = n, eq = n, bracket = n;
    int adepth = 0;
    for (std::size_t s = 0; s < n; ++s) {
        const Token &t = ts[stmt[s]];
        if (t.kind == TokKind::Ident && isAnnotationIdent(t.text)) {
            if (annot == n)
                annot = s;
        } else if (t.kind == TokKind::Punct) {
            if (t.text == "<") {
                ++adepth;
            } else if (t.text == ">") {
                adepth = std::max(0, adepth - 1);
            } else if (adepth == 0) {
                if (t.text == "(" && paren == n)
                    paren = s;
                else if (t.text == "=" && eq == n)
                    eq = s;
                else if (t.text == "[" && bracket == n)
                    bracket = s;
            }
        }
    }

    // Function (or constructor) if a top-level '(' appears before any
    // annotation macro and before any initializer: `void f() REQ(m);`
    // is a function, `T x GUARDED(m);` and `int x = f();` are members.
    if (paren < n && paren < annot && paren < eq) {
        m.is_function = true;
        if (paren > 0 && ts[stmt[paren - 1]].kind == TokKind::Ident) {
            const Token &nt = ts[stmt[paren - 1]];
            m.name = nt.text;
            m.line = nt.line;
            m.col = nt.col;
        }
        return !m.name.empty();
    }

    // Member: the declared name is the last identifier before the
    // initializer / array bound / annotation / skipped brace group.
    std::size_t limit = std::min({annot, eq, bracket, n});
    if (brace_marker >= 0)
        limit = std::min(limit, static_cast<std::size_t>(brace_marker));
    std::size_t name_pos = n;
    for (std::size_t s = 0; s < limit; ++s) {
        if (ts[stmt[s]].kind == TokKind::Ident)
            name_pos = s;
    }
    if (name_pos == n)
        return false;
    const Token &nt = ts[stmt[name_pos]];
    m.name = nt.text;
    m.line = nt.line;
    m.col = nt.col;
    m.annotated = annot < n;
    for (std::size_t s = 0; s < name_pos; ++s) {
        const Token &t = ts[stmt[s]];
        if (t.kind != TokKind::Ident)
            continue;
        if (t.text == "static")
            m.is_static = true;
        else if (t.text == "const" || t.text == "constexpr")
            m.is_const = true;
        else if (t.text == "Mutex" ||
                 t.text.find("mutex") != std::string::npos)
            m.is_mutex = true;
        else if (t.text.rfind("atomic", 0) == 0)
            m.is_atomic = true;
        else if (t.text.rfind("condition_variable", 0) == 0)
            m.is_cv = true;
        else if (t.text == "thread" || t.text == "jthread")
            m.is_thread = true;
    }
    return true;
}

void
parseClassBody(const SourceFile &f, std::size_t open, std::size_t close,
               ClassInfo &ci)
{
    const Tokens &ts = f.tokens;
    std::vector<std::size_t> stmt;
    long brace_marker = -1;
    auto flush = [&]() {
        MemberDecl m;
        if (parseMemberStatement(ts, stmt, brace_marker, m))
            ci.members.push_back(std::move(m));
        stmt.clear();
        brace_marker = -1;
    };
    for (std::size_t k = open + 1; k < close; ++k) {
        const Token &t = ts[k];
        if (isPunct(t, "{")) {
            std::size_t end = matchForward(ts, k, "{", "}");
            if (brace_marker < 0)
                brace_marker = static_cast<long>(stmt.size());
            if (!(end + 1 < close && isPunct(ts[end + 1], ";"))) {
                // Function body or nested definition without a
                // trailing ';' -- the statement ends here.
                flush();
            }
            k = end;
            continue;
        }
        if (isPunct(t, ";")) {
            flush();
            continue;
        }
        stmt.push_back(k);
    }
    if (!stmt.empty())
        flush();
    for (const auto &m : ci.members) {
        if (m.is_function)
            continue;
        ci.has_mutex = ci.has_mutex || m.is_mutex;
        ci.has_atomic = ci.has_atomic || m.is_atomic;
    }
}

void
collectClasses(const SourceFile &f, ProjectModel &pm)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident || !isClassKeyword(ts[i].text))
            continue;
        if (i > 0 && (isPunct(ts[i - 1], "<") || isPunct(ts[i - 1], ",") ||
                      isIdent(ts[i - 1], "enum")))
            continue; // template parameter or scoped enum
        std::size_t j = i + 1;
        // Skip attribute macros between the keyword and the name:
        // `class CNSIM_CAPABILITY("mutex") Mutex`.
        while (j < ts.size() && ts[j].kind == TokKind::Ident &&
               ts[j].text.rfind("CNSIM_", 0) == 0) {
            if (j + 1 < ts.size() && isPunct(ts[j + 1], "("))
                j = matchForward(ts, j + 1, "(", ")") + 1;
            else
                ++j;
        }
        if (j >= ts.size() || ts[j].kind != TokKind::Ident)
            continue; // anonymous
        ClassInfo ci;
        ci.name = ts[j].text;
        ci.line = ts[j].line;
        ci.file = &f;
        ++j;
        if (j < ts.size() && isIdent(ts[j], "final"))
            ++j;
        // Scan past a base clause to the body; ';', '(' or '=' first
        // means forward declaration / elaborated type / alias.
        while (j < ts.size() && !isPunct(ts[j], "{") &&
               !isPunct(ts[j], ";") && !isPunct(ts[j], "(") &&
               !isPunct(ts[j], "="))
            ++j;
        if (j >= ts.size() || !isPunct(ts[j], "{"))
            continue;
        std::size_t end = matchForward(ts, j, "{", "}");
        parseClassBody(f, j, end, ci);
        if (ci.has_mutex)
            pm.mutex_owning_types.insert(ci.name);
        pm.classes.push_back(std::move(ci));
    }
}

/** Keywords that look like calls but never name project symbols. */
const std::set<std::string> &
symbolKeywords()
{
    static const std::set<std::string> kw = {
        "if",        "for",      "while",    "switch",    "return",
        "sizeof",    "alignof",  "alignas",  "decltype",  "catch",
        "throw",     "new",      "delete",   "operator",  "assert",
        "defined",   "int",      "char",     "bool",      "float",
        "double",    "void",     "unsigned", "signed",    "long",
        "short",     "auto",     "constexpr", "const",    "static",
        "noexcept",  "explicit", "inline",    "virtual",  "override",
        "final",     "typename", "template",  "typeid",
        "static_cast",           "dynamic_cast",
        "const_cast",            "reinterpret_cast",
        "static_assert",
    };
    return kw;
}

void
indexSymbols(const SourceFile &f, ProjectModel &pm)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        const Token &t = ts[i];
        if (t.kind != TokKind::Ident)
            continue;
        if (symbolKeywords().count(t.text))
            continue;
        if (t.text.rfind("CNSIM_", 0) == 0)
            continue; // annotation macro between ')' and '{', not a def
        if (i > 0 && isPunct(ts[i - 1], "~"))
            continue; // destructor
        auto use = [&]() { ++pm.uses[t.text]; };
        if (i + 1 >= ts.size() || !isPunct(ts[i + 1], "(")) {
            use();
            continue;
        }
        bool member_access =
            i > 0 && (isPunct(ts[i - 1], ".") ||
                      (i > 1 && isPunct(ts[i - 1], ">") &&
                       isPunct(ts[i - 2], "-")));
        if (member_access || t.scope == ScopeKind::Block ||
            t.scope == ScopeKind::Enum) {
            use();
            continue;
        }
        // File/Class scope `ident(...)`: a declaration, a definition,
        // or (in an initializer) a call. Calls are recognized by the
        // expression context on the left.
        if (i > 0 && ts[i - 1].kind == TokKind::Punct) {
            const std::string &p = ts[i - 1].text;
            if (p == "=" || p == "," || p == "(" || p == "!" ||
                p == "?" || p == "+" || p == "/" || p == "%" ||
                p == "|" || p == "^") {
                use();
                continue;
            }
        }
        if (i > 0 && isIdent(ts[i - 1], "return")) {
            use();
            continue;
        }
        std::size_t close = matchForward(ts, i + 1, "(", ")");
        bool definition = false;
        for (std::size_t k = close + 1; k < ts.size(); ++k) {
            if (isPunct(ts[k], "{")) {
                definition = true;
                break;
            }
            if (isPunct(ts[k], ";") || isPunct(ts[k], ",") ||
                isPunct(ts[k], "="))
                break;
            // Trailing specifiers, attribute macros, constructor
            // initializer lists: skip their parenthesized groups.
            if (isPunct(ts[k], "("))
                k = matchForward(ts, k, "(", ")");
        }
        if (definition && f.sim_scope && t.text != "main")
            pm.function_defs.push_back({t.text, t.line, t.col, &f});
        // Declarations and definitions are not uses.
    }

    // Identifiers inside #define bodies are uses too (cnsim_assert's
    // body is the only caller panic() needs). The macro's own
    // parameters are counted as well -- harmlessly conservative.
    for (const auto &d : f.directives) {
        std::size_t w0 = d.text.find_first_not_of("# \t");
        if (w0 == std::string::npos ||
            d.text.compare(w0, 6, "define") != 0)
            continue;
        std::size_t p = w0 + 6;
        // Skip the macro's own name.
        while (p < d.text.size() && d.text[p] == ' ')
            ++p;
        while (p < d.text.size() &&
               (std::isalnum(static_cast<unsigned char>(d.text[p])) ||
                d.text[p] == '_'))
            ++p;
        while (p < d.text.size()) {
            char c = d.text[p];
            if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
                std::size_t q = p;
                while (q < d.text.size() &&
                       (std::isalnum(
                            static_cast<unsigned char>(d.text[q])) ||
                        d.text[q] == '_'))
                    ++q;
                ++pm.uses[d.text.substr(p, q - p)];
                p = q;
            } else {
                ++p;
            }
        }
    }
}

} // namespace

const std::map<std::string, std::set<std::string>> &
layerDag()
{
    // The committed architecture of src/ (DESIGN.md 3k). Keys are the
    // layer directories; values are the directories each may include
    // besides itself. Every layer may use common; only sim may use
    // everything (it owns composition).
    static const std::map<std::string, std::set<std::string>> dag = {
        {"common", {}},
        {"cache", {"common", "mem"}},
        {"core", {"common", "trace"}},
        {"l2", {"common", "cache", "mem"}},
        {"mem", {"common"}},
        {"nurapid", {"common", "cache", "l2", "mem"}},
        {"cactilite", {"common"}},
        {"trace", {"common"}},
        {"sample", {"common"}},
        {"obs", {"common"}},
        {"sim",
         {"common", "cache", "core", "l2", "mem", "nurapid", "cactilite",
          "trace", "sample", "obs"}},
        // The experiment farm sits above sim: it composes whole runs
        // into sweeps, so it may use the composition layer itself (and
        // reaches trace/workload vocabulary through sim's headers).
        {"farm", {"common", "sim", "sample", "obs"}},
    };
    return dag;
}

const std::set<std::string> &
universalHeaders()
{
    // Interface vocabulary: plain-data types every layer trades in.
    static const std::set<std::string> uni = {
        "cache/coh_state.hh", "mem/packet.hh",      "trace/trace.hh",
        "obs/event.hh",       "obs/trace_sink.hh",  "obs/metrics.hh",
        "sample/checkpoint.hh", "sample/warm.hh",
    };
    return uni;
}

const std::set<std::pair<std::string, std::string>> &
layerExceptions()
{
    // Grandfathered point edges; add here only with a DESIGN.md note.
    static const std::set<std::pair<std::string, std::string>> ex = {
        {"core", "sim/event_queue.hh"},
        {"core", "sim/system.hh"},
        {"cactilite", "nurapid/pref_table.hh"},
    };
    return ex;
}

std::string
includeKey(const std::string &path)
{
    std::size_t last = path.rfind('/');
    if (last == std::string::npos)
        return path;
    std::size_t prev = path.rfind('/', last - 1);
    return prev == std::string::npos ? path : path.substr(prev + 1);
}

void
ProjectModel::build(const std::vector<SourceFile> &files)
{
    classes.clear();
    mutex_owning_types.clear();
    function_defs.clear();
    uses.clear();
    include_graph.clear();
    file_by_key.clear();
    for (const auto &f : files) {
        std::string key = includeKey(f.path);
        if (!file_by_key.count(key))
            file_by_key.emplace(key, &f);
        auto &edges = include_graph[key];
        for (const auto &inc : f.includes)
            edges.emplace_back(includeKey(inc.target), inc.line);
    }
    for (const auto &f : files) {
        collectClasses(f, *this);
        indexSymbols(f, *this);
    }
}

} // namespace cnlint
