/**
 * @file
 * cnlint's whole-program project model, built once over every scanned
 * file before the rules run. Three indexes live here:
 *
 *  - the include graph, keyed by the last two path components of each
 *    file ("obs/binlog.hh"), with the committed architectural layer
 *    DAG the CNL-L rules enforce against it;
 *  - the class model: every class/struct with its parsed member
 *    declarations (name, type classification, thread-safety
 *    annotations), feeding the CNL-C concurrency rules;
 *  - the symbol index: function definitions, declarations, and use
 *    counts across the tree (including identifiers inside #define
 *    bodies), feeding CNL-T002 dead-symbol detection.
 *
 * The layer DAG is the committed architecture of src/ (DESIGN.md 3k):
 * each directory may include itself, plus exactly the directories
 * listed here. A small set of interface headers (events, packets,
 * coherence states, checkpoints) is universal -- includable from any
 * layer -- because they define the vocabulary types the layers trade
 * in; and three point exceptions are grandfathered where a concrete
 * type is needed across an otherwise-forbidden edge.
 */

#ifndef CNSIM_TOOLS_CNLINT_PROJECT_MODEL_HH
#define CNSIM_TOOLS_CNLINT_PROJECT_MODEL_HH

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cnlint/source_model.hh"

namespace cnlint
{

/**
 * @return the committed layer DAG: layer -> directories it may
 * include (besides itself; "common" appears explicitly).
 */
const std::map<std::string, std::set<std::string>> &layerDag();

/** @return interface headers includable from any layer. */
const std::set<std::string> &universalHeaders();

/** @return grandfathered (layer, include-target) point exceptions. */
const std::set<std::pair<std::string, std::string>> &layerExceptions();

/** @return the last two path components of @p path ("obs/binlog.hh"). */
std::string includeKey(const std::string &path);

/** One parsed member declaration of a class body. */
struct MemberDecl
{
    std::string name;
    int line = 0;
    int col = 0;
    bool is_function = false;
    bool is_static = false;
    bool is_const = false;  //!< const or constexpr
    bool is_mutex = false;  //!< type mentions mutex (std:: or cnsim::)
    bool is_atomic = false;
    bool is_cv = false;     //!< condition_variable[_any]
    bool is_thread = false; //!< std::thread / std::jthread
    bool annotated = false; //!< GUARDED_BY / PT_GUARDED_BY / SYNC_NOTE
};

/** One class/struct/union definition with its parsed members. */
struct ClassInfo
{
    std::string name;
    int line = 0;
    const SourceFile *file = nullptr;
    std::vector<MemberDecl> members;
    bool has_mutex = false;
    bool has_atomic = false;
};

/** One function definition found by the symbol index. */
struct SymbolDef
{
    std::string name;
    int line = 0;
    int col = 0;
    const SourceFile *file = nullptr;
};

/** The cross-file model every project-level rule consumes. */
struct ProjectModel
{
    std::vector<ClassInfo> classes;

    /** Class names owning a mutex member (their statics are blessed). */
    std::set<std::string> mutex_owning_types;

    /** Function definitions in sim-scope files (CNL-T002 candidates). */
    std::vector<SymbolDef> function_defs;

    /** identifier -> number of *use* appearances across every file. */
    std::map<std::string, int> uses;

    /** include key -> (target include key, line) edges between
     *  scanned files only. */
    std::map<std::string, std::vector<std::pair<std::string, int>>>
        include_graph;

    /** include key -> the scanned file behind it. */
    std::map<std::string, const SourceFile *> file_by_key;

    /** Build every index over @p files. */
    void build(const std::vector<SourceFile> &files);
};

} // namespace cnlint

#endif // CNSIM_TOOLS_CNLINT_PROJECT_MODEL_HH
