/**
 * @file
 * cnlint command-line driver.
 *
 * Usage:
 *   cnlint [--list-rules] [-q] [--format=gcc|sarif] [--dead-symbols]
 *          <file-or-directory>...
 *
 * Directories are walked recursively for C++ sources (.cc/.hh/.cpp/.h);
 * build trees, golden outputs, and the seeded-violation lint fixtures
 * are skipped so `cnlint src bench tools tests` from the repo root
 * lints exactly the hand-written tree. Files named explicitly are
 * always scanned (the fixture ctest relies on this).
 *
 * --format=gcc (default) prints `file:line:col: [RULE] message`, the
 * shape editors and CI log matchers parse. --format=sarif prints one
 * SARIF 2.1.0 document on stdout for code-scanning upload.
 * --dead-symbols enables CNL-T002, which only means something when the
 * whole tree (tests included) is scanned in one invocation.
 *
 * Exit status: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "cnlint/cnlint.hh"

namespace fs = std::filesystem;

namespace
{

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h";
}

/** Directories never entered during a recursive walk. */
bool
skippedDir(const std::string &name)
{
    return name == ".git" || name == "golden" || name == "lint_fixtures" ||
           name == "CMakeFiles" || name == "header_check" ||
           name.rfind("build", 0) == 0;
}

void
collect(const fs::path &root, std::vector<std::string> &files)
{
    if (fs::is_regular_file(root)) {
        files.push_back(root.string());
        return;
    }
    fs::recursive_directory_iterator it(root), end;
    while (it != end) {
        const fs::directory_entry &e = *it;
        if (e.is_directory() && skippedDir(e.path().filename().string())) {
            it.disable_recursion_pending();
            ++it;
            continue;
        }
        if (e.is_regular_file() && lintableFile(e.path()))
            files.push_back(e.path().string());
        ++it;
    }
}

constexpr const char *usage =
    "usage: cnlint [--list-rules] [-q] [--format=gcc|sarif] "
    "[--dead-symbols] <path>...\n";

} // namespace

int
main(int argc, char **argv)
{
    bool quiet = false;
    bool dead_symbols = false;
    std::string format = "gcc";
    std::vector<std::string> roots;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const auto &r : cnlint::ruleCatalog())
                std::printf("%s  %s%s\n", r.id.c_str(), r.summary.c_str(),
                            r.sim_scope_only ? "  [sim scope]" : "");
            return 0;
        }
        if (arg == "-q" || arg == "--quiet") {
            quiet = true;
            continue;
        }
        if (arg == "--dead-symbols") {
            dead_symbols = true;
            continue;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "gcc" && format != "sarif") {
                std::fprintf(stderr,
                             "cnlint: unknown format '%s' (gcc|sarif)\n",
                             format.c_str());
                return 2;
            }
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", usage);
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "cnlint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        }
        roots.push_back(arg);
    }
    if (roots.empty()) {
        std::fprintf(stderr, "%s", usage);
        return 2;
    }

    std::vector<std::string> files;
    for (const auto &r : roots) {
        std::error_code ec;
        if (!fs::exists(r, ec)) {
            std::fprintf(stderr, "cnlint: no such path: %s\n", r.c_str());
            return 2;
        }
        collect(r, files);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Wall time covers load + preprocessing + every rule; the summary
    // reports it so whole-tree lint cost stays visible in CI logs.
    auto t0 = std::chrono::steady_clock::now();
    cnlint::Linter linter;
    linter.setDeadSymbols(dead_symbols);
    for (const auto &f : files) {
        if (!linter.addFile(f)) {
            std::fprintf(stderr, "cnlint: cannot read %s\n", f.c_str());
            return 2;
        }
    }
    linter.run();
    auto t1 = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    if (format == "sarif") {
        std::printf("%s", cnlint::renderSarif(linter.findings()).c_str());
    } else {
        for (const auto &fd : linter.findings())
            std::printf("%s:%d:%d: [%s] %s\n", fd.file.c_str(), fd.line,
                        fd.col, fd.rule.c_str(), fd.message.c_str());
    }
    if (quiet) {
        std::fprintf(stderr,
                     "cnlint: %zu file(s), %zu finding(s), %.1f ms\n",
                     linter.fileCount(), linter.findings().size(), ms);
    } else {
        std::map<char, std::size_t> per_family;
        for (const auto &fd : linter.findings())
            ++per_family[fd.rule.size() > 4 ? fd.rule[4] : '?'];
        std::string breakdown;
        for (const auto &[family, n] : per_family)
            breakdown += " " + std::string(1, family) + "=" +
                         std::to_string(n);
        std::fprintf(stderr,
                     "cnlint: %zu file(s), %zu finding(s)%s%s, %.1f ms\n",
                     linter.fileCount(), linter.findings().size(),
                     breakdown.empty() ? "" : " |", breakdown.c_str(), ms);
    }
    return linter.findings().empty() ? 0 : 1;
}
