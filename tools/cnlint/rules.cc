/**
 * @file
 * The cnlint rule implementations.
 *
 * Each rule is a pass over a SourceFile's token stream (comments and
 * string literals already blanked). Two pieces of context are global
 * across every scanned file, so whole-tree invocations build them
 * first: the enum catalog (CNL-S001 must know an enum's full
 * enumerator list no matter which header defines it) and the set of
 * registered stat member names (CNL-S002 accepts registration in the
 * .cc even when the member is declared in the .hh).
 *
 * Every rule is lexical and deliberately conservative: it flags the
 * patterns the codebase actually uses, and intentional exceptions are
 * recorded in-line with an allow directive (syntax in cnlint.hh)
 * rather than by weakening the rule.
 */

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cnlint/cnlint.hh"
#include "cnlint/project_model.hh"
#include "cnlint/source_model.hh"

namespace cnlint
{

namespace
{

/** Cross-file context shared by all rules. */
struct Context
{
    /** enum name -> enumerator names, from every scanned file. */
    std::map<std::string, std::vector<std::string>> enums;
    /** Stat member names passed by address to add{Counter,Scalar,
     *  Distribution} anywhere in the scanned set. */
    std::set<std::string> registered_stats;
};

using Tokens = std::vector<Token>;

bool
isPunct(const Token &t, const char *p)
{
    return t.kind == TokKind::Punct && t.text == p;
}

bool
isIdent(const Token &t, const char *name)
{
    return t.kind == TokKind::Ident && t.text == name;
}

/**
 * @return index of the matcher for the opener at @p i (tokens[i] must
 * be @p open), or tokens.size() if unbalanced.
 */
std::size_t
matchForward(const Tokens &ts, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (std::size_t k = i; k < ts.size(); ++k) {
        if (isPunct(ts[k], open))
            ++depth;
        else if (isPunct(ts[k], close) && --depth == 0)
            return k;
    }
    return ts.size();
}

void
emit(const SourceFile &f, std::vector<Finding> &out, int line, int col,
     const std::string &rule, const std::string &msg)
{
    if (f.isSuppressed(rule, line))
        return;
    out.push_back({f.path, line, col, rule, msg});
}

void
emit(const SourceFile &f, std::vector<Finding> &out, const Token &t,
     const std::string &rule, const std::string &msg)
{
    emit(f, out, t.line, t.col, rule, msg);
}

// --------------------------------------------------------------------
// Global context collection
// --------------------------------------------------------------------

void
collectEnums(const SourceFile &f, Context &ctx)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!isIdent(ts[i], "enum"))
            continue;
        std::size_t j = i + 1;
        if (j < ts.size() &&
            (isIdent(ts[j], "class") || isIdent(ts[j], "struct")))
            ++j;
        if (j >= ts.size() || ts[j].kind != TokKind::Ident)
            continue; // anonymous enum
        std::string name = ts[j].text;
        ++j;
        // Skip an underlying-type clause up to the opening brace.
        while (j < ts.size() && !isPunct(ts[j], "{") && !isPunct(ts[j], ";"))
            ++j;
        if (j >= ts.size() || !isPunct(ts[j], "{"))
            continue; // forward declaration
        std::size_t end = matchForward(ts, j, "{", "}");
        std::vector<std::string> values;
        std::size_t k = j + 1;
        while (k < end) {
            if (ts[k].kind == TokKind::Ident) {
                values.push_back(ts[k].text);
                // Skip an optional "= expr" to the comma at depth 0.
                int depth = 0;
                while (k < end) {
                    if (isPunct(ts[k], "(") || isPunct(ts[k], "{"))
                        ++depth;
                    else if (isPunct(ts[k], ")") || isPunct(ts[k], "}"))
                        --depth;
                    else if (depth == 0 && isPunct(ts[k], ","))
                        break;
                    ++k;
                }
            }
            ++k;
        }
        // First definition wins; redefinitions in other files (e.g. a
        // test's local enum sharing a name) are ignored.
        if (!values.empty() && !ctx.enums.count(name))
            ctx.enums.emplace(name, std::move(values));
    }
}

void
collectStatRegistrations(const SourceFile &f, Context &ctx)
{
    static const std::set<std::string> regs = {
        "addCounter", "addScalar", "addDistribution"};
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident || !regs.count(ts[i].text) ||
            !isPunct(ts[i + 1], "("))
            continue;
        std::size_t end = matchForward(ts, i + 1, "(", ")");
        for (std::size_t k = i + 2; k < end; ++k) {
            if (!isPunct(ts[k], "&"))
                continue;
            // &ident(.ident | ->ident | ::ident)* -- register the last
            // component ("&stats.n_hits" registers n_hits,
            // "&cls[1]" registers cls).
            std::size_t m = k + 1;
            std::string last;
            while (m < end) {
                if (ts[m].kind == TokKind::Ident) {
                    last = ts[m].text;
                    ++m;
                    if (m < end && isPunct(ts[m], ".")) {
                        ++m;
                    } else if (m + 1 < end &&
                               ((isPunct(ts[m], "-") &&
                                 isPunct(ts[m + 1], ">")) ||
                                (isPunct(ts[m], ":") &&
                                 isPunct(ts[m + 1], ":")))) {
                        m += 2;
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            if (!last.empty())
                ctx.registered_stats.insert(last);
        }
    }
}

// --------------------------------------------------------------------
// D-rules: determinism (sim scope)
// --------------------------------------------------------------------

void
ruleD001BannedRandom(const SourceFile &f, std::vector<Finding> &out)
{
    static const std::set<std::string> always = {
        "random_device", "mt19937",        "mt19937_64",
        "minstd_rand",   "minstd_rand0",   "default_random_engine",
        "ranlux24",      "ranlux48",       "knuth_b",
        "drand48",       "lrand48",        "mrand48",
        "random_shuffle"};
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident)
            continue;
        bool qualified = i > 0 && isPunct(ts[i - 1], ":");
        bool called = i + 1 < ts.size() && isPunct(ts[i + 1], "(");
        if (always.count(ts[i].text) ||
            ((ts[i].text == "rand" || ts[i].text == "srand") &&
             (qualified || called))) {
            emit(f, out, ts[i], "CNL-D001",
                 "'" + ts[i].text +
                     "' is a nondeterministic/unseeded random source; "
                     "use a cnsim::Rng seeded from the run config");
        }
    }
}

void
ruleD002BannedClock(const SourceFile &f, std::vector<Finding> &out)
{
    static const std::set<std::string> always = {
        "system_clock",  "steady_clock", "high_resolution_clock",
        "gettimeofday",  "clock_gettime", "timespec_get",
        "localtime",     "gmtime",        "mktime"};
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident)
            continue;
        if (always.count(ts[i].text)) {
            emit(f, out, ts[i], "CNL-D002",
                 "'" + ts[i].text +
                     "' reads host wall-clock state; simulated time "
                     "must come from EventQueue::now()");
            continue;
        }
        if (ts[i].text != "time" && ts[i].text != "clock")
            continue;
        bool member = i > 0 && (isPunct(ts[i - 1], ".") ||
                                (i > 1 && isPunct(ts[i - 1], ">") &&
                                 isPunct(ts[i - 2], "-")));
        if (member)
            continue;
        bool qualified = i > 0 && isPunct(ts[i - 1], ":");
        bool nullary_call =
            i + 2 < ts.size() && isPunct(ts[i + 1], "(") &&
            (isPunct(ts[i + 2], ")") || isIdent(ts[i + 2], "nullptr") ||
             isIdent(ts[i + 2], "NULL") ||
             (ts[i + 2].kind == TokKind::Number && ts[i + 2].text == "0"));
        if (qualified || nullary_call) {
            emit(f, out, ts[i], "CNL-D002",
                 "'" + ts[i].text +
                     "()' reads host wall-clock state; simulated time "
                     "must come from EventQueue::now()");
        }
    }
}

void
ruleD003UnorderedIteration(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    // Type names that denote unordered containers in this file: the
    // std templates themselves plus any `using X = std::unordered_*`
    // aliases declared here.
    std::set<std::string> unordered_types = {"unordered_map",
                                             "unordered_set",
                                             "unordered_multimap",
                                             "unordered_multiset"};
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (isIdent(ts[i], "using") && ts[i + 1].kind == TokKind::Ident &&
            isPunct(ts[i + 2], "=")) {
            for (std::size_t k = i + 3;
                 k < ts.size() && !isPunct(ts[k], ";"); ++k) {
                if (ts[k].kind == TokKind::Ident &&
                    unordered_types.count(ts[k].text)) {
                    unordered_types.insert(ts[i + 1].text);
                    break;
                }
            }
        }
    }
    // Variables declared with an unordered type.
    std::set<std::string> unordered_vars;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident ||
            !unordered_types.count(ts[i].text))
            continue;
        std::size_t j = i + 1;
        if (j < ts.size() && isPunct(ts[j], "<")) {
            int depth = 0;
            for (; j < ts.size(); ++j) {
                if (isPunct(ts[j], "<"))
                    ++depth;
                else if (isPunct(ts[j], ">") && --depth == 0)
                    break;
            }
            ++j;
        }
        if (j < ts.size() && isPunct(ts[j], "&"))
            ++j; // reference parameters still expose unordered order
        if (j < ts.size() && ts[j].kind == TokKind::Ident &&
            !(j + 1 < ts.size() && isPunct(ts[j + 1], "(")))
            unordered_vars.insert(ts[j].text);
    }
    if (unordered_vars.empty())
        return;

    auto flag = [&](const Token &t, const std::string &var) {
        emit(f, out, t, "CNL-D003",
             "iteration over unordered container '" + var +
                 "' makes order depend on the host hash/allocator; use "
                 "FlatMap::forEach + sort, or a sorted container");
    };
    for (std::size_t i = 0; i < ts.size(); ++i) {
        // Range-for whose range expression names an unordered var.
        if (isIdent(ts[i], "for") && i + 1 < ts.size() &&
            isPunct(ts[i + 1], "(")) {
            std::size_t close = matchForward(ts, i + 1, "(", ")");
            std::size_t colon = ts.size();
            for (std::size_t k = i + 2; k < close; ++k) {
                if (isPunct(ts[k], ":") &&
                    !(k + 1 < close && isPunct(ts[k + 1], ":")) &&
                    !(k > 0 && isPunct(ts[k - 1], ":"))) {
                    colon = k;
                    break;
                }
            }
            for (std::size_t k = colon; k < close; ++k) {
                if (ts[k].kind == TokKind::Ident &&
                    unordered_vars.count(ts[k].text)) {
                    flag(ts[k], ts[k].text);
                    break;
                }
            }
        }
        // Explicit iterator walks: var.begin() / var.cbegin() / ...
        if (ts[i].kind == TokKind::Ident &&
            unordered_vars.count(ts[i].text) && i + 2 < ts.size() &&
            isPunct(ts[i + 1], ".") && ts[i + 2].kind == TokKind::Ident) {
            const std::string &m = ts[i + 2].text;
            if (m == "begin" || m == "cbegin" || m == "rbegin" ||
                m == "crbegin")
                flag(ts[i], ts[i].text);
        }
    }
}

void
ruleD004PointerKeyedMap(const SourceFile &f, std::vector<Finding> &out)
{
    static const std::set<std::string> ordered = {"map", "multimap", "set",
                                                  "multiset"};
    const Tokens &ts = f.tokens;
    for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident || !ordered.count(ts[i].text))
            continue;
        if (!(isPunct(ts[i - 1], ":") && isPunct(ts[i - 2], ":") &&
              i >= 3 && isIdent(ts[i - 3], "std")))
            continue;
        if (!isPunct(ts[i + 1], "<"))
            continue;
        // Scan the key type: the first template argument.
        int depth = 0;
        bool pointer_key = false;
        for (std::size_t k = i + 1; k < ts.size(); ++k) {
            if (isPunct(ts[k], "<")) {
                ++depth;
            } else if (isPunct(ts[k], ">")) {
                if (--depth == 0)
                    break;
            } else if (depth == 1 && isPunct(ts[k], ",")) {
                break;
            } else if (isPunct(ts[k], "*")) {
                pointer_key = true;
            }
        }
        if (pointer_key) {
            emit(f, out, ts[i], "CNL-D004",
                 "std::" + ts[i].text +
                     " keyed by a pointer orders entries by allocation "
                     "address, which varies run to run; key by a stable "
                     "ID instead");
        }
    }
}

void
ruleD005UnseededRng(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    auto flag = [&](const Token &t) {
        emit(f, out, t, "CNL-D005",
             "default-constructed Rng uses the baked-in seed; every Rng "
             "must be seeded explicitly from the run configuration");
    };
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!isIdent(ts[i], "Rng") || i + 1 >= ts.size())
            continue;
        const Token &n1 = ts[i + 1];
        // Rng::member, "class Rng", "Rng(" with arguments, etc.
        if (isPunct(n1, ":") || (i > 0 && (isIdent(ts[i - 1], "class") ||
                                           isIdent(ts[i - 1], "struct"))))
            continue;
        // `new Rng;` -- but a bare `Rng ;` also ends using-declarations
        // (`using cnsim::Rng;`), so require the `new`.
        if (isPunct(n1, ";") && i > 0 && isIdent(ts[i - 1], "new")) {
            flag(ts[i]);
            continue;
        }
        if (isPunct(n1, "(") && i + 2 < ts.size() &&
            isPunct(ts[i + 2], ")")) { // Rng()
            flag(ts[i]);
            continue;
        }
        if (isPunct(n1, "{") && i + 2 < ts.size() &&
            isPunct(ts[i + 2], "}")) { // Rng{}
            flag(ts[i]);
            continue;
        }
        if (n1.kind == TokKind::Ident && i + 2 < ts.size()) {
            const Token &n2 = ts[i + 2];
            if (isPunct(n2, ";")) {
                // `Rng name;` -- in a class body this is a member the
                // constructor is responsible for seeding (the ctor
                // initializer list doesn't mention the type, so it is
                // invisible here); anywhere else it is a local or
                // global default construction.
                if (ts[i].scope != ScopeKind::Class)
                    flag(ts[i]);
            } else if (isPunct(n2, "{") && i + 3 < ts.size() &&
                       isPunct(ts[i + 3], "}")) {
                flag(ts[i]); // Rng name{};
            }
        }
    }
}

// --------------------------------------------------------------------
// S-rules: structural invariants
// --------------------------------------------------------------------

void
ruleS001EnumSwitch(const SourceFile &f, const Context &ctx,
                   std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (!isIdent(ts[i], "switch") || !isPunct(ts[i + 1], "("))
            continue;
        std::size_t close = matchForward(ts, i + 1, "(", ")");
        if (close >= ts.size() || close + 1 >= ts.size() ||
            !isPunct(ts[close + 1], "{"))
            continue;
        std::size_t body_end = matchForward(ts, close + 1, "{", "}");

        std::string enum_name;
        std::set<std::string> seen;
        bool has_default = false;
        bool has_unreachable = false;
        for (std::size_t k = close + 2; k < body_end; ++k) {
            if (isIdent(ts[k], "default") && k + 1 < body_end &&
                isPunct(ts[k + 1], ":"))
                has_default = true;
            if (isIdent(ts[k], "cnsim_unreachable"))
                has_unreachable = true;
            // EnumName::Enumerator used as a `case` label. Walk back
            // over any qualifier chain (case cnsim::CohState::M:) to
            // confirm the `case` keyword, so mere mentions of the enum
            // in the body don't count as handled labels.
            if (ts[k].kind == TokKind::Ident && k + 3 < body_end &&
                isPunct(ts[k + 1], ":") && isPunct(ts[k + 2], ":") &&
                ts[k + 3].kind == TokKind::Ident &&
                ctx.enums.count(ts[k].text)) {
                std::size_t b = k;
                while (b >= 3 && isPunct(ts[b - 1], ":") &&
                       isPunct(ts[b - 2], ":") &&
                       ts[b - 3].kind == TokKind::Ident)
                    b -= 3;
                if (b == 0 || !isIdent(ts[b - 1], "case"))
                    continue;
                if (enum_name.empty())
                    enum_name = ts[k].text;
                if (ts[k].text == enum_name)
                    seen.insert(ts[k + 3].text);
            }
        }
        if (enum_name.empty())
            continue; // not a switch over a tracked enum
        if (has_default) {
            if (!has_unreachable) {
                emit(f, out, ts[i], "CNL-S001",
                     "switch over " + enum_name +
                         " has a default that silently absorbs new "
                         "enumerators; enumerate them or make the "
                         "default cnsim_unreachable()");
            }
            continue;
        }
        std::string missing;
        for (const auto &v : ctx.enums.at(enum_name)) {
            if (!seen.count(v))
                missing += missing.empty() ? v : ", " + v;
        }
        if (!missing.empty()) {
            emit(f, out, ts[i], "CNL-S001",
                 "switch over " + enum_name +
                     " is not exhaustive (missing: " + missing +
                     ") and has no cnsim_unreachable() default");
        }
    }
}

void
ruleS002UnregisteredStat(const SourceFile &f, const Context &ctx,
                         std::vector<Finding> &out)
{
    static const std::set<std::string> stat_types = {"Counter", "Scalar",
                                                     "Distribution"};
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident || !stat_types.count(ts[i].text))
            continue;
        if (ts[i].scope != ScopeKind::Class)
            continue;
        // Exclude pointers/references, template arguments, forward
        // declarations and method return types: the pattern is
        // `Counter name ;`, `Counter name [`, or `Counter name {`.
        if (i > 0 && (isIdent(ts[i - 1], "class") ||
                      isIdent(ts[i - 1], "struct") ||
                      isPunct(ts[i - 1], "<")))
            continue;
        const Token &name = ts[i + 1];
        const Token &after = ts[i + 2];
        if (name.kind != TokKind::Ident)
            continue;
        if (!(isPunct(after, ";") || isPunct(after, "[") ||
              isPunct(after, "{")))
            continue;
        if (!ctx.registered_stats.count(name.text)) {
            emit(f, out, name, "CNL-S002",
                 ts[i].text + " member '" + name.text +
                     "' is never registered via addCounter/addScalar/"
                     "addDistribution, so it is invisible in every "
                     "stats dump");
        }
    }
}

void
ruleS003FunctionOnEventQueue(const SourceFile &f, std::vector<Finding> &out)
{
    // The event arena stores callables inline; wrapping one in a
    // std::function (or the legacy EventQueue::Callback alias) before
    // scheduling re-introduces a type-erasure allocation per event.
    if (f.path.find("sim/event_queue.hh") != std::string::npos)
        return; // the alias's own declaration
    const Tokens &ts = f.tokens;
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
        bool member_call =
            isIdent(ts[i], "schedule") && isPunct(ts[i + 1], "(") &&
            (isPunct(ts[i - 1], ".") ||
             (i >= 2 && isPunct(ts[i - 1], ">") && isPunct(ts[i - 2], "-")));
        if (member_call) {
            std::size_t close = matchForward(ts, i + 1, "(", ")");
            for (std::size_t k = i + 2; k < close; ++k) {
                bool is_std_function =
                    isIdent(ts[k], "function") && k >= 2 &&
                    isPunct(ts[k - 1], ":") && isPunct(ts[k - 2], ":");
                if (is_std_function || isIdent(ts[k], "Callback")) {
                    emit(f, out, ts[k], "CNL-S003",
                         "scheduling a type-erased std::function on the "
                         "EventQueue; pass the lambda directly so it "
                         "lands in the arena's inline storage");
                    break;
                }
            }
        }
        if (isIdent(ts[i], "EventQueue") && i + 3 < ts.size() &&
            isPunct(ts[i + 1], ":") && isPunct(ts[i + 2], ":") &&
            isIdent(ts[i + 3], "Callback")) {
            emit(f, out, ts[i], "CNL-S003",
                 "EventQueue::Callback forces type erasure; declare the "
                 "callable type directly (template or lambda)");
        }
    }
}

// --------------------------------------------------------------------
// H-rules: header hygiene
// --------------------------------------------------------------------

void
ruleH001UsingNamespace(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (isIdent(ts[i], "using") && isIdent(ts[i + 1], "namespace")) {
            emit(f, out, ts[i], "CNL-H001",
                 "'using namespace' in a header leaks the namespace "
                 "into every includer");
        }
    }
}

/** Split a directive into whitespace-separated words. */
std::vector<std::string>
words(const std::string &s)
{
    std::vector<std::string> w;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t j = i;
        while (j < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[j])))
            ++j;
        if (j > i)
            w.push_back(s.substr(i, j - i));
        i = j;
    }
    // Normalize "# ifndef" to "#ifndef".
    if (w.size() >= 2 && w[0] == "#") {
        w.erase(w.begin());
        w[0] = "#" + w[0];
    }
    return w;
}

void
ruleH002IncludeGuard(const SourceFile &f, std::vector<Finding> &out)
{
    const auto &dirs = f.directives;
    if (dirs.empty()) {
        emit(f, out, 1, 1, "CNL-H002", "header has no include guard");
        return;
    }
    auto first = words(dirs.front().text);
    int line = dirs.front().line;
    if (first.size() >= 2 && first[0] == "#pragma" && first[1] == "once")
        return;
    if (first.size() < 2 || first[0] != "#ifndef") {
        emit(f, out, line, 1, "CNL-H002",
             "header must open with '#ifndef CNSIM_..._HH' (or #pragma "
             "once) before any other directive");
        return;
    }
    const std::string &guard = first[1];
    if (dirs.size() < 2) {
        emit(f, out, line, 1, "CNL-H002", "include guard is never #defined");
        return;
    }
    auto second = words(dirs[1].text);
    if (second.size() < 2 || second[0] != "#define" ||
        second[1] != guard) {
        emit(f, out, dirs[1].line, 1, "CNL-H002",
             "include-guard #define does not match #ifndef " + guard);
        return;
    }
    bool conforming = guard.rfind("CNSIM_", 0) == 0 &&
                      guard.size() > 9 &&
                      guard.compare(guard.size() - 3, 3, "_HH") == 0;
    if (!conforming) {
        emit(f, out, line, 1, "CNL-H002",
             "guard macro '" + guard +
                 "' does not follow the CNSIM_<PATH>_HH convention");
    }
}

void
ruleH003MissingInclude(const SourceFile &f, std::vector<Finding> &out)
{
    // Curated symbol -> acceptable provider headers. Only symbols with
    // an unambiguous home are listed; anything absent is ignored.
    static const std::map<std::string, std::vector<std::string>> providers =
        {
            {"vector", {"vector"}},
            {"string", {"string"}},
            {"function", {"functional"}},
            {"unordered_map", {"unordered_map"}},
            {"unordered_set", {"unordered_set"}},
            {"map", {"map"}},
            {"multimap", {"map"}},
            {"set", {"set"}},
            {"multiset", {"set"}},
            {"unique_ptr", {"memory"}},
            {"shared_ptr", {"memory"}},
            {"weak_ptr", {"memory"}},
            {"make_unique", {"memory"}},
            {"make_shared", {"memory"}},
            {"optional", {"optional"}},
            {"nullopt", {"optional"}},
            {"variant", {"variant"}},
            {"monostate", {"variant"}},
            {"array", {"array"}},
            {"deque", {"deque"}},
            {"list", {"list"}},
            {"pair", {"utility", "map"}},
            {"make_pair", {"utility"}},
            {"move", {"utility"}},
            {"forward", {"utility"}},
            {"swap", {"utility"}},
            {"exchange", {"utility"}},
            {"declval", {"utility"}},
            {"uint8_t", {"cstdint"}},
            {"uint16_t", {"cstdint"}},
            {"uint32_t", {"cstdint"}},
            {"uint64_t", {"cstdint"}},
            {"int8_t", {"cstdint"}},
            {"int16_t", {"cstdint"}},
            {"int32_t", {"cstdint"}},
            {"int64_t", {"cstdint"}},
            {"uintptr_t", {"cstdint"}},
            {"intptr_t", {"cstdint"}},
            {"size_t",
             {"cstddef", "cstdint", "cstdio", "cstring", "vector",
              "string"}},
            {"ptrdiff_t", {"cstddef"}},
            {"max_align_t", {"cstddef"}},
            {"mutex", {"mutex"}},
            {"lock_guard", {"mutex"}},
            {"unique_lock", {"mutex"}},
            {"scoped_lock", {"mutex"}},
            {"atomic", {"atomic"}},
            {"thread", {"thread"}},
            {"condition_variable", {"condition_variable"}},
            {"sort", {"algorithm"}},
            {"stable_sort", {"algorithm"}},
            {"lower_bound", {"algorithm"}},
            {"upper_bound", {"algorithm"}},
            {"min", {"algorithm"}},
            {"max", {"algorithm"}},
            {"min_element", {"algorithm"}},
            {"max_element", {"algorithm"}},
            {"clamp", {"algorithm"}},
            {"fill", {"algorithm"}},
            {"copy", {"algorithm"}},
            {"find_if", {"algorithm"}},
            {"remove_if", {"algorithm"}},
            {"sqrt", {"cmath"}},
            {"pow", {"cmath"}},
            {"exp", {"cmath"}},
            {"log", {"cmath"}},
            {"floor", {"cmath"}},
            {"ceil", {"cmath"}},
            {"fabs", {"cmath"}},
            {"ostream", {"ostream", "iostream", "sstream", "fstream"}},
            {"istream", {"istream", "iostream", "sstream", "fstream"}},
            {"ofstream", {"fstream"}},
            {"ifstream", {"fstream"}},
            {"fstream", {"fstream"}},
            {"ostringstream", {"sstream"}},
            {"istringstream", {"sstream"}},
            {"stringstream", {"sstream"}},
            {"cout", {"iostream"}},
            {"cerr", {"iostream"}},
            {"launder", {"new"}},
            {"numeric_limits", {"limits"}},
            {"initializer_list", {"initializer_list"}},
            {"runtime_error", {"stdexcept"}},
            {"logic_error", {"stdexcept"}},
            {"va_list", {"cstdarg"}},
            {"decay_t", {"type_traits"}},
            {"is_same", {"type_traits"}},
            {"is_same_v", {"type_traits"}},
            {"enable_if_t", {"type_traits"}},
            {"conditional_t", {"type_traits"}},
            {"is_invocable", {"type_traits"}},
            {"is_invocable_v", {"type_traits"}},
            {"is_trivially_destructible_v", {"type_traits"}},
            {"true_type", {"type_traits"}},
            {"false_type", {"type_traits"}},
            {"remove_reference_t", {"type_traits"}},
        };

    // This header's own #include names, from the cached include list
    // (quoted targets are blanked in the code view, so the cache reads
    // them from the raw text).
    std::set<std::string> included;
    for (const auto &inc : f.includes)
        included.insert(inc.target);

    const Tokens &ts = f.tokens;
    std::set<std::string> reported;
    for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
        if (!isIdent(ts[i], "std") || !isPunct(ts[i + 1], ":") ||
            !isPunct(ts[i + 2], ":") || ts[i + 3].kind != TokKind::Ident)
            continue;
        const std::string &sym = ts[i + 3].text;
        auto it = providers.find(sym);
        if (it == providers.end() || reported.count(sym))
            continue;
        bool satisfied = false;
        for (const auto &p : it->second)
            satisfied = satisfied || included.count(p);
        if (!satisfied) {
            reported.insert(sym);
            emit(f, out, ts[i], "CNL-H003",
                 "std::" + sym + " used but <" + it->second.front() +
                     "> is not included directly; headers must be "
                     "self-contained");
        }
    }
}

// --------------------------------------------------------------------
// L-rules: architectural layering (whole-program include graph)
// --------------------------------------------------------------------

void
ruleL001LayerViolation(const SourceFile &f, std::vector<Finding> &out)
{
    if (f.layer.empty() || !layerDag().count(f.layer))
        return;
    const auto &allowed = layerDag().at(f.layer);
    for (const auto &inc : f.includes) {
        if (inc.angled)
            continue;
        std::size_t slash = inc.target.find('/');
        if (slash == std::string::npos)
            continue;
        std::string target_layer = inc.target.substr(0, slash);
        if (!layerDag().count(target_layer) || target_layer == f.layer)
            continue; // not a layered include, or intra-layer
        if (allowed.count(target_layer))
            continue;
        if (universalHeaders().count(includeKey(inc.target)))
            continue;
        if (layerExceptions().count({f.layer, includeKey(inc.target)}))
            continue;
        std::string deps;
        for (const auto &d : allowed)
            deps += deps.empty() ? d : ", " + d;
        emit(f, out, inc.line, inc.col, "CNL-L001",
             "include of '" + inc.target +
                 "' violates the committed layer DAG: " + f.layer +
                 " may only depend on {" + deps +
                 "} (plus the universal interface headers)");
    }
}

void
ruleL002IncludeCycle(const ProjectModel &pm, std::vector<Finding> &out)
{
    // Adjacency restricted to scanned files; detection is per-node
    // reachability back to itself (self-includes are 1-cycles).
    std::map<std::string, std::vector<std::string>> adj;
    for (const auto &[key, edges] : pm.include_graph) {
        for (const auto &[tkey, line] : edges) {
            (void)line;
            if (pm.file_by_key.count(tkey))
                adj[key].push_back(tkey);
        }
    }
    auto reaches = [&](const std::string &from, const std::string &to) {
        std::set<std::string> visited;
        std::vector<std::string> stack{from};
        while (!stack.empty()) {
            std::string n = stack.back();
            stack.pop_back();
            if (n == to)
                return true;
            if (!visited.insert(n).second)
                continue;
            auto it = adj.find(n);
            if (it != adj.end())
                for (const auto &m : it->second)
                    stack.push_back(m);
        }
        return false;
    };
    for (const auto &[key, edges] : pm.include_graph) {
        const SourceFile &f = *pm.file_by_key.at(key);
        // Report the first include edge that closes a cycle back to
        // this file; one finding per file keeps N-cycles readable.
        for (const auto &[tkey, line] : edges) {
            if (!pm.file_by_key.count(tkey) || !reaches(tkey, key))
                continue;
            int col = 1;
            for (const auto &inc : f.includes) {
                if (inc.line == line) {
                    col = inc.col;
                    break;
                }
            }
            emit(f, out, line, col, "CNL-L002",
                 "include of '" + tkey +
                     "' closes an include cycle back to '" + key +
                     "'; break the cycle with a forward declaration or "
                     "an interface header");
            break;
        }
    }
}

// --------------------------------------------------------------------
// C-rules: concurrency discipline (sim scope)
// --------------------------------------------------------------------

void
ruleC001UnannotatedMember(const ProjectModel &pm, std::vector<Finding> &out)
{
    for (const auto &ci : pm.classes) {
        if (!ci.file->sim_scope || (!ci.has_mutex && !ci.has_atomic))
            continue;
        for (const auto &m : ci.members) {
            if (m.is_function || m.is_static || m.is_const || m.is_mutex ||
                m.is_atomic || m.is_cv || m.is_thread || m.annotated)
                continue;
            emit(*ci.file, out, m.line, m.col, "CNL-C001",
                 "member '" + m.name + "' of lock/atomic-owning class '" +
                     ci.name +
                     "' has no thread-safety annotation; add "
                     "CNSIM_GUARDED_BY / CNSIM_PT_GUARDED_BY, or document "
                     "the synchronization protocol with CNSIM_SYNC_NOTE");
        }
    }
}

void
ruleC002RawThread(const SourceFile &f, std::vector<Finding> &out)
{
    // The only blessed std::thread owners: the experiment fan-out and
    // the binlog writer. Everything else routes through them.
    if (f.path.find("parallel_runner") != std::string::npos ||
        f.path.find("binlog") != std::string::npos)
        return;
    const Tokens &ts = f.tokens;
    for (std::size_t i = 3; i < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident ||
            (ts[i].text != "thread" && ts[i].text != "jthread"))
            continue;
        if (!(isPunct(ts[i - 1], ":") && isPunct(ts[i - 2], ":") &&
              isIdent(ts[i - 3], "std")))
            continue;
        emit(f, out, ts[i], "CNL-C002",
             "raw std::thread outside the blessed owners "
             "(ParallelRunner, BinlogWriter); route concurrency through "
             "them so shutdown, affinity, and determinism stay in one "
             "place");
    }
}

void
ruleC003MutableStatic(const SourceFile &f, const ProjectModel &pm,
                      std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!isIdent(ts[i], "static"))
            continue;
        if (ts[i].scope == ScopeKind::Class ||
            ts[i].scope == ScopeKind::Enum)
            continue; // class statics are CNL-C001's problem
        bool exempt = false;
        bool is_func = false;
        int adepth = 0;
        const Token *name = nullptr;
        for (std::size_t j = i + 1; j < ts.size(); ++j) {
            const Token &t = ts[j];
            if (t.kind == TokKind::Punct) {
                if (t.text == "<") {
                    ++adepth;
                } else if (t.text == ">") {
                    adepth = std::max(0, adepth - 1);
                } else if (adepth == 0) {
                    if (t.text == "(") {
                        is_func = true;
                        break;
                    }
                    if (t.text == ";" || t.text == "=" || t.text == "{" ||
                        t.text == "[")
                        break;
                }
                continue;
            }
            if (t.kind != TokKind::Ident)
                continue;
            if (t.text == "const" || t.text == "constexpr" ||
                t.text == "thread_local")
                exempt = true;
            else if (t.text.rfind("atomic", 0) == 0 ||
                     t.text == "Mutex" ||
                     t.text.find("mutex") != std::string::npos)
                exempt = true;
            else if (pm.mutex_owning_types.count(t.text))
                exempt = true; // a type that locks all its state
            if (adepth == 0)
                name = &t;
        }
        if (is_func || exempt || !name)
            continue;
        emit(f, out, *name, "CNL-C003",
             "mutable static '" + name->text +
                 "' is shared unsynchronized state; make it "
                 "const/constexpr, std::atomic, or wrap it in a type "
                 "whose mutex guards every member");
    }
}

void
ruleC004ProcessControl(const SourceFile &f, std::vector<Finding> &out)
{
    // Process control lives in one place, the way CNL-C002 keeps raw
    // threads in one place: src/farm/ owns fork/exec/waitpid so worker
    // lifecycle, stderr capture, and requeue policy cannot scatter.
    if (f.path.find("farm/") != std::string::npos)
        return;
    static const char *const banned[] = {
        "fork", "vfork", "execl", "execlp", "execle", "execv",
        "execvp", "execve", "posix_spawn", "posix_spawnp", "waitpid",
        "wait4",
    };
    const Tokens &ts = f.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
        if (ts[i].kind != TokKind::Ident || !isPunct(ts[i + 1], "("))
            continue;
        for (const char *b : banned) {
            if (ts[i].text != b)
                continue;
            emit(f, out, ts[i], "CNL-C004",
                 "process-control call '" + ts[i].text +
                     "' outside src/farm/; spawn and reap workers "
                     "through the farm coordinator so crash handling "
                     "and requeue policy stay in one place");
            break;
        }
    }
}

// --------------------------------------------------------------------
// T-rules: lifetime and liveness
// --------------------------------------------------------------------

void
ruleT001DanglingCapture(const SourceFile &f, std::vector<Finding> &out)
{
    const Tokens &ts = f.tokens;
    for (std::size_t i = 1; i + 1 < ts.size(); ++i) {
        bool member_call =
            isIdent(ts[i], "schedule") && isPunct(ts[i + 1], "(") &&
            (isPunct(ts[i - 1], ".") ||
             (i >= 2 && isPunct(ts[i - 1], ">") && isPunct(ts[i - 2], "-")));
        if (!member_call)
            continue;
        // The receiver (the queue itself) outlives its events, so
        // capturing it by reference is the one blessed '&' capture.
        std::string receiver;
        std::size_t r = isPunct(ts[i - 1], ".") ? i - 2 : i - 3;
        if (r < ts.size() && ts[r].kind == TokKind::Ident)
            receiver = ts[r].text;
        std::size_t close = matchForward(ts, i + 1, "(", ")");
        for (std::size_t k = i + 2; k < close; ++k) {
            if (!isPunct(ts[k], "["))
                continue;
            std::size_t rb = matchForward(ts, k, "[", "]");
            if (rb >= close || rb + 1 >= ts.size() ||
                !(isPunct(ts[rb + 1], "(") || isPunct(ts[rb + 1], "{"))) {
                k = rb;
                continue; // subscript, not a lambda introducer
            }
            for (std::size_t m = k + 1; m < rb; ++m) {
                if (!isPunct(ts[m], "&"))
                    continue;
                const Token &n = ts[m + 1];
                if (n.kind == TokKind::Ident && n.text != receiver) {
                    emit(f, out, ts[m], "CNL-T001",
                         "EventQueue callable captures '&" + n.text +
                             "'; the event may run after the capturing "
                             "frame is gone -- capture by value or "
                             "capture a long-lived owner");
                } else if (isPunct(n, "]") || isPunct(n, ",")) {
                    emit(f, out, ts[m], "CNL-T001",
                         "EventQueue callable uses a default "
                         "by-reference capture '[&]'; events outlive "
                         "frames, so captures must be explicit and "
                         "by value (or the queue itself)");
                }
            }
            k = rb;
        }
    }
}

void
ruleT002DeadSymbol(const ProjectModel &pm, std::vector<Finding> &out)
{
    std::set<std::pair<const SourceFile *, int>> seen;
    for (const auto &d : pm.function_defs) {
        auto it = pm.uses.find(d.name);
        if (it != pm.uses.end() && it->second > 0)
            continue;
        if (!seen.insert({d.file, d.line}).second)
            continue;
        emit(*d.file, out, d.line, d.col, "CNL-T002",
             "function '" + d.name +
                 "' is defined but never used anywhere in the scanned "
                 "tree; delete it or add the caller that was meant to "
                 "exist");
    }
}

void
ruleA001MalformedDirective(const SourceFile &f, std::vector<Finding> &out)
{
    for (const auto &a : f.allows) {
        if (a.malformed)
            emit(f, out, a.line, 1, "CNL-A001",
                 "malformed cnlint directive: " + a.error);
    }
}

} // namespace

// --------------------------------------------------------------------
// Catalog and Linter driver
// --------------------------------------------------------------------

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {"CNL-A001", "malformed cnlint suppression comment", false},
        {"CNL-C001",
         "mutable member of a lock/atomic-owning class lacks a "
         "thread-safety annotation",
         true},
        {"CNL-C002",
         "raw std::thread outside ParallelRunner/BinlogWriter", true},
        {"CNL-C003", "unannotated mutable static", true},
        {"CNL-C004",
         "process-control call (fork/exec/waitpid) outside src/farm/",
         true},
        {"CNL-D001",
         "banned random source; use a seeded cnsim::Rng", true},
        {"CNL-D002",
         "banned wall-clock source; use EventQueue::now()", true},
        {"CNL-D003",
         "iteration over std::unordered_{map,set} leaks hash order",
         true},
        {"CNL-D004", "pointer-keyed std::map/std::set", true},
        {"CNL-D005", "default-constructed (unseeded) Rng", true},
        {"CNL-S001",
         "enum switch neither exhaustive nor cnsim_unreachable-guarded",
         false},
        {"CNL-S002", "Counter/Scalar/Distribution member never "
                     "registered with a StatGroup",
         true},
        {"CNL-S003",
         "std::function/Callback scheduled on the EventQueue", false},
        {"CNL-H001", "'using namespace' in a header", false},
        {"CNL-H002", "missing or malformed include guard", false},
        {"CNL-H003",
         "std:: symbol without a direct include (self-containment)",
         false},
        {"CNL-L001",
         "include edge not permitted by the committed layer DAG", false},
        {"CNL-L002", "include cycle among the scanned files", false},
        {"CNL-T001",
         "EventQueue callable captures a stack local by reference", true},
        {"CNL-T002",
         "function defined but never used in the scanned tree "
         "(--dead-symbols)",
         true},
    };
    return catalog;
}

bool
isKnownRule(const std::string &id)
{
    for (const auto &r : ruleCatalog())
        if (r.id == id)
            return true;
    return false;
}

struct Linter::Impl
{
    std::vector<SourceFile> files;
    Context ctx;
    ProjectModel pm;
    bool dead_symbols = false;
};

void
Linter::setDeadSymbols(bool enable)
{
    impl->dead_symbols = enable;
}

Linter::Linter() : impl(new Impl) {}

Linter::~Linter()
{
    delete impl;
}

std::size_t
Linter::fileCount() const
{
    return impl->files.size();
}

bool
Linter::addFile(const std::string &path)
{
    SourceFile f;
    if (!f.load(path))
        return false;
    impl->files.push_back(std::move(f));
    return true;
}

void
Linter::run()
{
    results.clear();
    impl->ctx = Context{};
    impl->pm.build(impl->files);
    for (const auto &f : impl->files) {
        collectEnums(f, impl->ctx);
        collectStatRegistrations(f, impl->ctx);
    }
    for (const auto &f : impl->files) {
        ruleA001MalformedDirective(f, results);
        if (f.sim_scope) {
            ruleD001BannedRandom(f, results);
            ruleD002BannedClock(f, results);
            ruleD003UnorderedIteration(f, results);
            ruleD004PointerKeyedMap(f, results);
            ruleD005UnseededRng(f, results);
            ruleS002UnregisteredStat(f, impl->ctx, results);
            ruleC002RawThread(f, results);
            ruleC003MutableStatic(f, impl->pm, results);
            ruleC004ProcessControl(f, results);
            ruleT001DanglingCapture(f, results);
        }
        ruleS001EnumSwitch(f, impl->ctx, results);
        ruleS003FunctionOnEventQueue(f, results);
        if (f.header) {
            ruleH001UsingNamespace(f, results);
            ruleH002IncludeGuard(f, results);
            ruleH003MissingInclude(f, results);
        }
        ruleL001LayerViolation(f, results);
    }
    ruleL002IncludeCycle(impl->pm, results);
    ruleC001UnannotatedMember(impl->pm, results);
    if (impl->dead_symbols)
        ruleT002DeadSymbol(impl->pm, results);
    std::sort(results.begin(), results.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });
}

} // namespace cnlint
