#include "cnlint/source_model.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "cnlint/cnlint.hh"

namespace cnlint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

/** @return true if @p s ends with @p suffix. */
bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/** @return the path component following "src/", or "". */
std::string
layerFromPath(const std::string &p)
{
    std::size_t pos = p.rfind("/src/");
    std::size_t start;
    if (pos != std::string::npos)
        start = pos + 5;
    else if (p.rfind("src/", 0) == 0)
        start = 4;
    else
        return "";
    std::size_t slash = p.find('/', start);
    if (slash == std::string::npos)
        return ""; // a file directly under src/ has no layer directory
    return p.substr(start, slash - start);
}

} // namespace

bool
SourceFile::load(const std::string &p)
{
    path = p;
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    raw = ss.str();

    header = endsWith(p, ".hh") || endsWith(p, ".h") || endsWith(p, ".hpp");
    // Simulation scope: anything under a src/ directory. The path may
    // be given relative ("src/...") or absolute ("/x/repo/src/...").
    sim_scope = raw.npos != p.find("/src/") || p.rfind("src/", 0) == 0;
    layer = layerFromPath(p);

    line_starts.clear();
    line_starts.push_back(0);
    for (std::size_t i = 0; i < raw.size(); ++i)
        if (raw[i] == '\n')
            line_starts.push_back(i + 1);

    blankCommentsAndStrings();
    tokenize();
    assignScopes();
    collectDirectives();
    parseDirectives();
    return true;
}

int
SourceFile::lineOf(std::size_t off) const
{
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), off);
    return static_cast<int>(it - line_starts.begin());
}

int
SourceFile::colOf(std::size_t off) const
{
    int line = lineOf(off);
    return static_cast<int>(off - line_starts[line - 1]) + 1;
}

bool
SourceFile::isSuppressed(const std::string &rule, int line) const
{
    auto it = suppressed.find(rule);
    return it != suppressed.end() && it->second.count(line) != 0;
}

bool
SourceFile::lineIsCodeFree(int line) const
{
    if (line < 1 || static_cast<std::size_t>(line) > line_starts.size())
        return true;
    std::size_t begin = line_starts[line - 1];
    std::size_t end = static_cast<std::size_t>(line) < line_starts.size()
                          ? line_starts[line]
                          : code.size();
    for (std::size_t i = begin; i < end && i < code.size(); ++i) {
        char c = code[i];
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

void
SourceFile::blankCommentsAndStrings()
{
    code = raw;
    enum class St
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    St st = St::Code;
    std::string raw_delim; // for R"delim( ... )delim"
    for (std::size_t i = 0; i < code.size(); ++i) {
        char c = code[i];
        char n = i + 1 < code.size() ? code[i + 1] : '\0';
        switch (st) {
        case St::Code:
            if (c == '/' && n == '/') {
                st = St::LineComment;
                code[i] = code[i + 1] = ' ';
                ++i;
            } else if (c == '/' && n == '*') {
                st = St::BlockComment;
                code[i] = code[i + 1] = ' ';
                ++i;
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !identChar(code[i - 1]))) {
                // Raw string: capture the delimiter up to '('.
                std::size_t j = i + 2;
                raw_delim.clear();
                while (j < code.size() && code[j] != '(' &&
                       raw_delim.size() < 16)
                    raw_delim.push_back(code[j++]);
                st = St::RawString;
                for (std::size_t k = i; k <= j && k < code.size(); ++k)
                    code[k] = ' ';
                i = j;
            } else if (c == '"') {
                st = St::String;
                code[i] = ' ';
            } else if (c == '\'' && !(i > 0 && identChar(code[i - 1]))) {
                // Exclude digit separators (1'000'000).
                st = St::Char;
                code[i] = ' ';
            }
            break;
        case St::LineComment:
            if (c == '\n')
                st = St::Code;
            else
                code[i] = ' ';
            break;
        case St::BlockComment:
            if (c == '*' && n == '/') {
                code[i] = code[i + 1] = ' ';
                ++i;
                st = St::Code;
            } else if (c != '\n') {
                code[i] = ' ';
            }
            break;
        case St::String:
            if (c == '\\' && n != '\0') {
                code[i] = ' ';
                if (n != '\n')
                    code[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                code[i] = ' ';
                st = St::Code;
            } else if (c != '\n') {
                code[i] = ' ';
            }
            break;
        case St::Char:
            if (c == '\\' && n != '\0') {
                code[i] = code[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                code[i] = ' ';
                st = St::Code;
            } else if (c != '\n') {
                code[i] = ' ';
            }
            break;
        case St::RawString: {
            std::string close = ")" + raw_delim + "\"";
            if (code.compare(i, close.size(), close) == 0) {
                for (std::size_t k = 0; k < close.size(); ++k)
                    code[i + k] = ' ';
                i += close.size() - 1;
                st = St::Code;
            } else if (c != '\n') {
                code[i] = ' ';
            }
            break;
        }
        }
    }
}

void
SourceFile::tokenize()
{
    tokens.clear();
    bool line_continues = false; // previous line ended with backslash
    bool in_directive = false;   // inside a preprocessor line
    for (std::size_t i = 0; i < code.size();) {
        char c = code[i];
        if (c == '\n') {
            if (!line_continues)
                in_directive = false;
            line_continues = false;
            ++i;
            continue;
        }
        if (c == '\\' && i + 1 < code.size() && code[i + 1] == '\n') {
            line_continues = true;
            i += 2;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor lines are not code tokens for the rules (an
        // #include <unordered_map> must not trip CNL-D003); H-rules
        // and the symbol index read the cached directive lines.
        if (c == '#') {
            in_directive = true;
            ++i;
            continue;
        }
        if (in_directive) {
            ++i;
            continue;
        }
        int line = lineOf(i);
        int col = colOf(i);
        if (identStart(c)) {
            std::size_t j = i;
            while (j < code.size() && identChar(code[j]))
                ++j;
            tokens.push_back(
                {TokKind::Ident, code.substr(i, j - i), line, col,
                 ScopeKind::File});
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < code.size() &&
                   (identChar(code[j]) || code[j] == '.' || code[j] == '\''))
                ++j;
            tokens.push_back(
                {TokKind::Number, code.substr(i, j - i), line, col,
                 ScopeKind::File});
            i = j;
        } else {
            tokens.push_back({TokKind::Punct, std::string(1, c), line, col,
                              ScopeKind::File});
            ++i;
        }
    }
}

void
SourceFile::assignScopes()
{
    // A pending class/struct/union or enum keyword turns the next `{`
    // into a Class/Enum scope; a `;`, `(` or `=` before the brace
    // cancels it (forward declarations, elaborated parameter types,
    // alias initializers). Base-clause `:` and template `<...>` pass
    // through, so `class X : public A, public B {` still opens a Class
    // scope. Attribute macros between the keyword and the name --
    // `class CNSIM_CAPABILITY("mutex") Mutex {` -- are skipped so
    // their parentheses don't read as a cancellation.
    enum class Pending
    {
        None,
        Class,
        Enum,
    };
    Pending pending = Pending::None;
    std::vector<ScopeKind> stack;
    for (std::size_t idx = 0; idx < tokens.size(); ++idx) {
        Token &t = tokens[idx];
        t.scope = stack.empty() ? ScopeKind::File : stack.back();
        if (t.kind == TokKind::Ident) {
            if (pending != Pending::None &&
                t.text.rfind("CNSIM_", 0) == 0 && idx + 1 < tokens.size() &&
                tokens[idx + 1].kind == TokKind::Punct &&
                tokens[idx + 1].text == "(") {
                // Skip the attribute macro's argument list.
                int depth = 0;
                std::size_t k = idx + 1;
                for (; k < tokens.size(); ++k) {
                    tokens[k].scope = t.scope;
                    if (tokens[k].kind != TokKind::Punct)
                        continue;
                    if (tokens[k].text == "(")
                        ++depth;
                    else if (tokens[k].text == ")" && --depth == 0)
                        break;
                }
                idx = k;
                continue;
            }
            if (t.text == "class" || t.text == "struct" ||
                t.text == "union") {
                // `enum class` stays an enum; `template <class T>`'s
                // keyword (preceded by '<' or ',') is a type
                // parameter, not a definition.
                const Token *prev = idx > 0 ? &tokens[idx - 1] : nullptr;
                bool tparam = prev && prev->kind == TokKind::Punct &&
                              (prev->text == "<" || prev->text == ",");
                if (pending != Pending::Enum && !tparam)
                    pending = Pending::Class;
            } else if (t.text == "enum") {
                pending = Pending::Enum;
            }
        } else if (t.kind == TokKind::Punct) {
            if (t.text == "{") {
                stack.push_back(pending == Pending::Class ? ScopeKind::Class
                                : pending == Pending::Enum
                                    ? ScopeKind::Enum
                                    : ScopeKind::Block);
                pending = Pending::None;
            } else if (t.text == "}") {
                if (!stack.empty())
                    stack.pop_back();
            } else if (t.text == ";" || t.text == "(" || t.text == "=") {
                pending = Pending::None;
            }
        }
    }
}

void
SourceFile::collectDirectives()
{
    directives.clear();
    includes.clear();
    std::size_t start = 0;
    int line = 1;
    while (start <= code.size()) {
        std::size_t end = code.find('\n', start);
        if (end == std::string::npos)
            end = code.size();
        std::size_t s = start;
        while (s < end && std::isspace(static_cast<unsigned char>(code[s])))
            ++s;
        if (s < end && code[s] == '#') {
            Directive d;
            d.line = line;
            // Join backslash continuations into one logical line so
            // multi-line #define bodies stay visible to the symbol
            // index (the H-rules only read the leading words).
            std::size_t lstart = s;
            std::size_t lend = end;
            std::string text;
            for (;;) {
                std::size_t e = lend;
                bool continues = false;
                while (e > lstart &&
                       std::isspace(
                           static_cast<unsigned char>(code[e - 1])))
                    --e;
                if (e > lstart && code[e - 1] == '\\') {
                    continues = true;
                    --e;
                }
                text.append(code, lstart, e - lstart);
                text.push_back(' ');
                if (!continues || lend >= code.size())
                    break;
                ++line;
                lstart = lend + 1;
                lend = code.find('\n', lstart);
                if (lend == std::string::npos)
                    lend = code.size();
                end = lend;
            }
            d.text = text;
            directives.push_back(std::move(d));

            // #include targets are read from the raw text: the blanked
            // view erases quoted targets along with every other string
            // literal.
            auto w0 = text.find_first_not_of("# \t");
            if (w0 != std::string::npos &&
                text.compare(w0, 7, "include") == 0) {
                std::size_t rs = raw.find_first_of("<\"", s);
                if (rs != std::string::npos && rs < raw.find('\n', s)) {
                    char open = raw[rs];
                    char close = open == '<' ? '>' : '"';
                    std::size_t re = raw.find(close, rs + 1);
                    if (re != std::string::npos) {
                        Include inc;
                        inc.line = lineOf(rs);
                        inc.col = colOf(rs);
                        inc.target = raw.substr(rs + 1, re - rs - 1);
                        inc.angled = open == '<';
                        includes.push_back(std::move(inc));
                    }
                }
            }
        }
        if (end >= code.size())
            break;
        start = end + 1;
        ++line;
    }
}

void
SourceFile::parseDirectives()
{
    allows.clear();
    suppressed.clear();
    static const std::string key = "cnlint:";
    std::size_t pos = 0;
    while ((pos = raw.find(key, pos)) != raw.npos) {
        std::size_t dstart = pos;
        pos += key.size();
        // Skip whitespace, read the directive word.
        while (pos < raw.size() && raw[pos] == ' ')
            ++pos;
        std::size_t wend = pos;
        while (wend < raw.size() && identChar(raw[wend]))
            ++wend;
        std::string word = raw.substr(pos, wend - pos);
        int line = lineOf(dstart);

        if (word == "scope" || word == "layer") {
            std::size_t open = raw.find('(', wend);
            std::size_t close = open == raw.npos ? raw.npos
                                                 : raw.find(')', open);
            if (open != raw.npos && close != raw.npos) {
                std::string value = raw.substr(open + 1, close - open - 1);
                if (word == "scope" && value == "sim")
                    sim_scope = true;
                else if (word == "layer" && !value.empty())
                    layer = value;
            }
            pos = wend;
            continue;
        }
        if (word == "allow") {
            Allow a;
            a.line = line;
            a.next_line = false;
            a.malformed = false;
            std::size_t open = wend;
            while (open < raw.size() && raw[open] == ' ')
                ++open;
            std::size_t close =
                open < raw.size() && raw[open] == '('
                    ? raw.find(')', open)
                    : raw.npos;
            if (close == raw.npos) {
                a.malformed = true;
                a.error = "expected allow(RULE-ID reason)";
            } else {
                std::string body = raw.substr(open + 1, close - open - 1);
                std::size_t sp = body.find(' ');
                a.rule = sp == body.npos ? body : body.substr(0, sp);
                a.reason = sp == body.npos ? "" : body.substr(sp + 1);
                while (!a.reason.empty() && a.reason.front() == ' ')
                    a.reason.erase(a.reason.begin());
                if (!isKnownRule(a.rule)) {
                    a.malformed = true;
                    a.error = "unknown rule ID '" + a.rule + "'";
                } else if (a.reason.empty()) {
                    a.malformed = true;
                    a.error = "allow(" + a.rule +
                              ") needs a reason string";
                }
            }
            if (!a.malformed) {
                suppressed[a.rule].insert(a.line);
                // A directive on a comment-only line (possibly part of
                // a multi-line comment) covers every following
                // comment-only line and the first code line after it.
                if (lineIsCodeFree(a.line)) {
                    a.next_line = true;
                    int l = a.line + 1;
                    int last = lineOf(raw.size() ? raw.size() - 1 : 0);
                    while (l <= last && lineIsCodeFree(l))
                        suppressed[a.rule].insert(l++);
                    suppressed[a.rule].insert(l);
                }
            }
            allows.push_back(a);
            pos = wend;
            continue;
        }
        // "cnlint:" with any other word is not a directive cnlint
        // understands (fixture-expect markers are parsed by the test
        // harness, not here).
        pos = wend;
    }
}

} // namespace cnlint
