/**
 * @file
 * cnlint: cnsim's determinism-and-invariant static-analysis suite.
 *
 * cnlint is a token-level ("AST-lite") scanner built around a
 * whole-program project model: every file is loaded before any rule
 * runs, so the rules see a cross-TU include graph, a class/member
 * model, and a symbol index in addition to each file's token stream.
 * It enforces the project rules the C++ compiler cannot: determinism
 * hygiene in simulation code (D-rules), structural invariants
 * (S-rules), header hygiene (H-rules), architectural layering
 * (L-rules), concurrency annotation discipline (C-rules), and
 * lifetime/liveness properties (T-rules). It is deliberately not a
 * compiler plugin -- the rules are lexical and cross-file, the tool
 * builds in milliseconds, and it runs identically on every host the
 * simulator builds on.
 *
 * Rule catalog (see DESIGN.md sections 3f and 3k for the rationale):
 *
 *   CNL-D001  banned random source (std::rand, random_device, mt19937,
 *             ...) in simulation code; use a seeded cnsim::Rng
 *   CNL-D002  banned wall-clock source (system_clock, steady_clock,
 *             time(), ...) in simulation code; simulated time comes
 *             from EventQueue::now()
 *   CNL-D003  iteration over a std::unordered_{map,set}; unordered
 *             iteration order leaks host ASLR/hash state into stats,
 *             traces, and event schedules -- use FlatMap + sort or a
 *             sorted container
 *   CNL-D004  pointer-keyed std::map/std::set; pointer order varies
 *             run to run
 *   CNL-D005  default-constructed (unseeded) Rng; every Rng must take
 *             a seed that derives from configuration
 *   CNL-S001  switch over a tracked enum that is neither exhaustive
 *             nor guarded by a cnsim_unreachable() default
 *   CNL-S002  Counter/Scalar/Distribution member never registered
 *             with a StatGroup/MetricsRegistry (invisible stat)
 *   CNL-S003  std::function / EventQueue::Callback scheduled on the
 *             EventQueue; schedule raw callables so they use the
 *             arena's inline storage
 *   CNL-H001  `using namespace` in a header
 *   CNL-H002  missing or malformed include guard (expects
 *             CNSIM_*_HH #ifndef/#define or #pragma once)
 *   CNL-H003  std:: symbol used in a header without a direct include
 *             of its provider (self-containment assist)
 *   CNL-L001  include edge not permitted by the committed layer DAG
 *             (src/<dir> dependencies; obs/ can never depend on l2/)
 *   CNL-L002  include cycle among the scanned files
 *   CNL-C001  mutable member of a mutex- or atomic-owning class with
 *             no thread-safety annotation (CNSIM_GUARDED_BY /
 *             CNSIM_PT_GUARDED_BY / CNSIM_SYNC_NOTE)
 *   CNL-C002  raw std::thread outside the blessed owners
 *             (ParallelRunner, BinlogWriter)
 *   CNL-C003  unannotated mutable static (file- or function-local)
 *   CNL-T001  EventQueue callable capturing a stack local by
 *             reference (may run after the frame is gone)
 *   CNL-T002  function defined in simulation code but never used
 *             anywhere in the scanned tree (opt-in: --dead-symbols)
 *   CNL-A001  malformed cnlint suppression comment
 *
 * Suppression syntax, placed on the offending line or on a
 * comment-only line directly above it:
 *
 *   // cnlint: allow(CNL-D002 wall-clock time is reporting-only here)
 *
 * The rule ID must name a real rule and the reason must be non-empty;
 * anything else is itself a finding (CNL-A001).
 *
 * Scope: D-rules, C-rules, T-rules and S002 apply only to simulation
 * code -- files under src/ -- because benches legitimately read wall
 * clocks, spawn threads, and keep local state unguarded. A file
 * outside src/ can opt in with a `// cnlint: scope(sim)` pragma (the
 * lint-fixture corpus uses this). L-rules key off the file's layer,
 * derived from its src/<dir>/ path or a `// cnlint: layer(<dir>)`
 * pragma. All other rules apply everywhere cnlint looks.
 */

#ifndef CNSIM_TOOLS_CNLINT_CNLINT_HH
#define CNSIM_TOOLS_CNLINT_CNLINT_HH

#include <string>
#include <vector>

namespace cnlint
{

/** One diagnostic: a rule violation at a source location. */
struct Finding
{
    std::string file; //!< path as given to the linter
    int line = 0;     //!< 1-based line number
    int col = 0;      //!< 1-based column number (0 if unknown)
    std::string rule; //!< rule ID, e.g. "CNL-D003"
    std::string message;
};

/** One catalog entry, for --list-rules and ID validation. */
struct RuleInfo
{
    std::string id;
    std::string summary;
    bool sim_scope_only;
};

/** @return the full rule catalog in ID order. */
const std::vector<RuleInfo> &ruleCatalog();

/** @return true if @p id names a cataloged rule. */
bool isKnownRule(const std::string &id);

/**
 * Render @p findings as a SARIF 2.1.0 document (one run, one tool,
 * rule metadata from the catalog). Paths are emitted as given.
 */
std::string renderSarif(const std::vector<Finding> &findings);

/**
 * The linter: add files, then run() once. Rules that need cross-file
 * context (enum definitions for CNL-S001, the include graph for the
 * L-rules, the symbol index for CNL-T002) see every added file, so a
 * whole-tree invocation must add the whole tree before running.
 */
class Linter
{
  public:
    /**
     * Load and pre-process @p path.
     * @return false (with a note on stderr) if the file is unreadable.
     */
    bool addFile(const std::string &path);

    /**
     * Enable CNL-T002 dead-symbol detection. Off by default: dead-code
     * findings only mean something when the whole tree (including the
     * tests that exercise a symbol) has been added.
     */
    void setDeadSymbols(bool enable);

    /** Run every rule over every added file. */
    void run();

    /** Findings sorted by (file, line, col, rule); valid after run(). */
    const std::vector<Finding> &findings() const { return results; }

    /** Number of files successfully added. */
    std::size_t fileCount() const;

    ~Linter();
    Linter();
    Linter(const Linter &) = delete;
    Linter &operator=(const Linter &) = delete;

  private:
    struct Impl;
    Impl *impl;
    std::vector<Finding> results;
};

} // namespace cnlint

#endif // CNSIM_TOOLS_CNLINT_CNLINT_HH
