/**
 * @file
 * cnlint: cnsim's determinism-and-invariant static-analysis suite.
 *
 * cnlint is a token-level ("AST-lite") scanner that enforces the
 * project rules the C++ compiler cannot: determinism hygiene in
 * simulation code (D-rules), structural invariants such as exhaustive
 * enum switches and registered statistics (S-rules), and header
 * hygiene (H-rules). It is deliberately not a compiler plugin -- the
 * rules are lexical and cross-file, the tool builds in milliseconds,
 * and it runs identically on every host the simulator builds on.
 *
 * Rule catalog (see DESIGN.md section 3f for the full rationale):
 *
 *   CNL-D001  banned random source (std::rand, random_device, mt19937,
 *             ...) in simulation code; use a seeded cnsim::Rng
 *   CNL-D002  banned wall-clock source (system_clock, steady_clock,
 *             time(), ...) in simulation code; simulated time comes
 *             from EventQueue::now()
 *   CNL-D003  iteration over a std::unordered_{map,set}; unordered
 *             iteration order leaks host ASLR/hash state into stats,
 *             traces, and event schedules -- use FlatMap + sort or a
 *             sorted container
 *   CNL-D004  pointer-keyed std::map/std::set; pointer order varies
 *             run to run
 *   CNL-D005  default-constructed (unseeded) Rng; every Rng must take
 *             a seed that derives from configuration
 *   CNL-S001  switch over a tracked enum that is neither exhaustive
 *             nor guarded by a cnsim_unreachable() default
 *   CNL-S002  Counter/Scalar/Distribution member never registered
 *             with a StatGroup/MetricsRegistry (invisible stat)
 *   CNL-S003  std::function / EventQueue::Callback scheduled on the
 *             EventQueue; schedule raw callables so they use the
 *             arena's inline storage
 *   CNL-H001  `using namespace` in a header
 *   CNL-H002  missing or malformed include guard (expects
 *             CNSIM_*_HH #ifndef/#define or #pragma once)
 *   CNL-H003  std:: symbol used in a header without a direct include
 *             of its provider (self-containment assist)
 *   CNL-A001  malformed cnlint suppression comment
 *
 * Suppression syntax, placed on the offending line or on a
 * comment-only line directly above it:
 *
 *   // cnlint: allow(CNL-D002 wall-clock time is reporting-only here)
 *
 * The rule ID must name a real rule and the reason must be non-empty;
 * anything else is itself a finding (CNL-A001).
 *
 * Scope: D-rules and S002 apply only to simulation code -- files under
 * src/ -- because benches legitimately read wall clocks and tests
 * legitimately fuzz against std::unordered_map. A file outside src/
 * can opt in with a `// cnlint: scope(sim)` pragma (the lint-fixture
 * corpus uses this). All other rules apply everywhere cnlint looks.
 */

#ifndef CNSIM_TOOLS_CNLINT_CNLINT_HH
#define CNSIM_TOOLS_CNLINT_CNLINT_HH

#include <string>
#include <vector>

namespace cnlint
{

/** One diagnostic: a rule violation at a source location. */
struct Finding
{
    std::string file; //!< path as given to the linter
    int line = 0;     //!< 1-based line number
    std::string rule; //!< rule ID, e.g. "CNL-D003"
    std::string message;
};

/** One catalog entry, for --list-rules and ID validation. */
struct RuleInfo
{
    std::string id;
    std::string summary;
    bool sim_scope_only;
};

/** @return the full rule catalog in ID order. */
const std::vector<RuleInfo> &ruleCatalog();

/** @return true if @p id names a cataloged rule. */
bool isKnownRule(const std::string &id);

/**
 * The linter: add files, then run() once. Rules that need cross-file
 * context (enum definitions for CNL-S001, stat registrations for
 * CNL-S002) see every added file, so a whole-tree invocation must add
 * the whole tree before running.
 */
class Linter
{
  public:
    /**
     * Load and pre-process @p path.
     * @return false (with a note on stderr) if the file is unreadable.
     */
    bool addFile(const std::string &path);

    /** Run every rule over every added file. */
    void run();

    /** Findings sorted by (file, line, rule); valid after run(). */
    const std::vector<Finding> &findings() const { return results; }

    /** Number of files successfully added. */
    std::size_t fileCount() const;

    ~Linter();
    Linter();
    Linter(const Linter &) = delete;
    Linter &operator=(const Linter &) = delete;

  private:
    struct Impl;
    Impl *impl;
    std::vector<Finding> results;
};

} // namespace cnlint

#endif // CNSIM_TOOLS_CNLINT_CNLINT_HH
