/**
 * @file
 * cnckpt: inspector for CNCKPT01 machine checkpoints.
 *
 * Reads a checkpoint written with `cnsim --ckpt-save c.ckpt` (or by
 * Runner::runVariability's in-memory path dumped to disk) and prints
 * what a user needs to decide whether a file is resumable: the machine
 * shape (cores, L2 organization, interconnect), the instant it was
 * taken at, the trace provenance the resuming run must replay, the
 * per-core stream cursors, and the occupancy summary the saving System
 * recorded:
 *
 *   cnckpt summary c.ckpt
 *   cnckpt cores c.ckpt
 *
 * All validation (magic, version, checksum, truncation) happens in
 * Checkpoint::loadFile, so a corrupt file dies with the same message a
 * resuming run would print.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "mem/interconnect.hh"
#include "sample/checkpoint.hh"
#include "sim/system.hh"

using namespace cnsim;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s <command> <file.ckpt>\n"
        "commands:\n"
        "  summary <file.ckpt>   machine shape, tick, trace provenance,\n"
        "                        occupancy meta\n"
        "  cores <file.ckpt>     per-core retirement counters, stream\n"
        "                        cursors and pending step events\n",
        argv0);
}

const char *
l2KindName(std::uint32_t k)
{
    // The checkpoint stores the raw enum value; an out-of-range value
    // would have failed validateConfig on resume, but the inspector
    // must not crash on it either.
    if (k > static_cast<std::uint32_t>(L2Kind::Dnuca))
        return "<unknown>";
    return toString(static_cast<L2Kind>(k));
}

const char *
interconnectName(std::uint32_t k)
{
    if (k > static_cast<std::uint32_t>(InterconnectKind::Ring))
        return "<unknown>";
    return toString(static_cast<InterconnectKind>(k));
}

void
summary(const sample::Checkpoint &ck, const std::string &path)
{
    std::printf("%s: CNCKPT01 version %u\n", path.c_str(), ck.version);
    std::printf("  machine     %u cores, %s L2, %s interconnect\n",
                ck.num_cores, l2KindName(ck.l2_kind),
                interconnectName(ck.interconnect));
    std::printf("  taken at    tick %llu, %llu events executed\n",
                static_cast<unsigned long long>(ck.tick),
                static_cast<unsigned long long>(ck.events_executed));
    std::printf("  trace       params hash %016llx, seed %llu\n",
                static_cast<unsigned long long>(ck.trace_params_hash),
                static_cast<unsigned long long>(ck.trace_seed));
    std::printf("  warm-up     %llu instructions per core\n",
                static_cast<unsigned long long>(ck.warmup_instructions));
    std::printf("  arch bytes  %zu\n", ck.arch.size());
    for (const auto &m : ck.meta)
        std::printf("  %-18s %llu\n", m.first.c_str(),
                    static_cast<unsigned long long>(m.second));
}

void
cores(const sample::Checkpoint &ck)
{
    std::printf("%-5s %14s %14s %14s %12s %10s\n", "core",
                "instructions", "data refs", "records", "step@tick",
                "step seq");
    for (std::size_t c = 0; c < ck.cores.size(); ++c) {
        const sample::CoreState &cs = ck.cores[c];
        std::printf("%-5zu %14llu %14llu %14llu %12llu %10llu\n", c,
                    static_cast<unsigned long long>(cs.instructions),
                    static_cast<unsigned long long>(cs.data_refs),
                    static_cast<unsigned long long>(cs.consumed),
                    static_cast<unsigned long long>(cs.step_when),
                    static_cast<unsigned long long>(cs.step_seq));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        usage(argv[0]);
        return argc == 1 ? 0 : 1;
    }
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (cmd != "summary" && cmd != "cores") {
        usage(argv[0]);
        fatal("unknown command '%s'", cmd.c_str());
    }
    sample::Checkpoint ck = sample::Checkpoint::loadFile(argv[2]);
    if (cmd == "summary")
        summary(ck, argv[2]);
    else
        cores(ck);
    return 0;
}
